"""Tests for the retransmission baseline and the relay-vs-repeat contrast."""

import numpy as np
import pytest

from repro.adversary import (
    AdaptiveAdversary,
    NonAdaptiveAdversary,
    NullAdversary,
    StaticStrategy,
)
from repro.baseline import RetransmissionAllToAll
from repro.core import AllToAllInstance, run_protocol
from repro.core.det_sqrt import DetSqrtAllToAll


class TestRetransmission:
    def test_fault_free(self):
        instance = AllToAllInstance.random(16, width=2, seed=0)
        report = run_protocol(RetransmissionAllToAll(3), instance,
                              NullAdversary(), bandwidth=16)
        assert report.perfect
        assert report.rounds == 3

    def test_beats_naive_against_mobile_random_faults(self):
        """Each copy corrupted independently ⇒ the vote helps."""
        instance = AllToAllInstance.random(64, width=2, seed=1)
        single = run_protocol(RetransmissionAllToAll(1), instance,
                              AdaptiveAdversary(1 / 16, seed=2), seed=3)
        voted = run_protocol(RetransmissionAllToAll(7), instance,
                             AdaptiveAdversary(1 / 16, seed=2), seed=3)
        assert voted.accuracy > single.accuracy

    def test_fails_against_persistent_faults(self):
        """A static fault set (legal for the mobile adversary) defeats any
        repetition count — the reason the paper relays through node sets."""
        instance = AllToAllInstance.random(64, width=2, seed=4)
        adversary = NonAdaptiveAdversary(1 / 16, StaticStrategy(),
                                         content_attack="flip", seed=5)
        report = run_protocol(RetransmissionAllToAll(9), instance,
                              adversary, seed=6)
        assert not report.perfect
        # roughly the static fault set's coverage stays wrong
        assert report.accuracy < 0.99

    def test_relays_survive_the_same_persistent_faults(self):
        instance = AllToAllInstance.random(64, width=2, seed=4)
        adversary = NonAdaptiveAdversary(1 / 32, StaticStrategy(),
                                         content_attack="flip", seed=5)
        report = run_protocol(DetSqrtAllToAll(), instance, adversary,
                              bandwidth=16, seed=6)
        assert report.perfect

    def test_invalid_repetitions(self):
        with pytest.raises(ValueError):
            RetransmissionAllToAll(0)
