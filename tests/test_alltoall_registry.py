"""Unit tests for the protocol registry and experiment runner."""

import pytest

from repro.adversary import AdaptiveAdversary, NullAdversary
from repro.core import AllToAllInstance, make_protocol, run_protocol
from repro.core.alltoall import PROTOCOLS, success_rate
from repro.core.det_sqrt import DetSqrtAllToAll


class TestRegistry:
    def test_all_four_protocols_registered(self):
        assert set(PROTOCOLS) == {"nonadaptive", "adaptive", "det-logn",
                                  "det-sqrt"}

    def test_make_protocol(self):
        protocol = make_protocol("det-sqrt")
        assert protocol.name == "det-sqrt"

    def test_unknown_protocol(self):
        with pytest.raises(ValueError):
            make_protocol("nope")


class TestRunner:
    def test_report_fields(self):
        instance = AllToAllInstance.random(16, width=1, seed=0)
        report = run_protocol(DetSqrtAllToAll(), instance, NullAdversary(),
                              bandwidth=16)
        assert report.n == 16
        assert report.alpha == 0.0
        assert report.perfect
        assert report.rounds > 0
        assert report.bits_sent > 0

    def test_transit_corruption_counted(self):
        instance = AllToAllInstance.random(64, width=1, seed=1)
        report = run_protocol(DetSqrtAllToAll(), instance,
                              AdaptiveAdversary(1 / 32, seed=2),
                              bandwidth=16)
        assert report.entries_corrupted_in_transit > 0
        assert report.perfect  # ...and yet every message arrived

    def test_success_rate(self):
        rate = success_rate(DetSqrtAllToAll, 16,
                            lambda trial: AdaptiveAdversary(1 / 16,
                                                            seed=trial),
                            trials=3, bandwidth=16)
        assert rate == 1.0
