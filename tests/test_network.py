"""Unit tests for the Congested Clique engine."""

import numpy as np
import pytest

from repro.adversary.base import Adversary, NullAdversary, RoundView
from repro.adversary.budget import FaultBudgetViolation
from repro.cliquesim.network import BandwidthViolation, CongestedClique


def full_matrix(n, value=1):
    return np.full((n, n), value, dtype=np.int64)


class TestFaultFreeRounds:
    def test_delivery(self):
        net = CongestedClique(8, bandwidth=4)
        payload = np.arange(64).reshape(8, 8) % 16
        delivered = net.round(payload, width=4)
        assert np.array_equal(delivered, payload)
        assert net.rounds_used == 1

    def test_width_defaults_to_bandwidth(self):
        net = CongestedClique(4, bandwidth=3)
        delivered = net.round(full_matrix(4, 7))
        assert np.array_equal(delivered, full_matrix(4, 7))

    def test_width_violation(self):
        net = CongestedClique(4, bandwidth=2)
        with pytest.raises(BandwidthViolation):
            net.round(full_matrix(4), width=3)

    def test_payload_value_violation(self):
        net = CongestedClique(4, bandwidth=2)
        with pytest.raises(BandwidthViolation):
            net.round(full_matrix(4, 5), width=2)

    def test_shape_violation(self):
        net = CongestedClique(4)
        with pytest.raises(ValueError):
            net.round(np.zeros((3, 3), dtype=np.int64))

    def test_minimum_size(self):
        with pytest.raises(ValueError):
            CongestedClique(1)

    def test_bit_accounting_ignores_absent_and_diagonal(self):
        net = CongestedClique(4, bandwidth=1)
        payload = np.full((4, 4), -1, dtype=np.int64)
        payload[0, 1] = 1
        payload[2, 2] = 1  # diagonal: free
        net.round(payload, width=1)
        assert net.bits_sent == 1


class _EvilAdversary(Adversary):
    """Tries to corrupt everything regardless of its fault set."""

    def select_edges(self, view):
        mask = np.zeros((self.n, self.n), dtype=bool)
        mask[0, 1] = mask[1, 0] = True
        return mask

    def corrupt(self, view, edges):
        return np.zeros_like(view.intended)  # tampers every entry


class _OverBudgetAdversary(Adversary):
    def select_edges(self, view):
        mask = np.ones((self.n, self.n), dtype=bool)
        np.fill_diagonal(mask, False)
        return mask


class TestAdversaryEnforcement:
    def test_clamping_limits_corruption_to_fault_set(self):
        adv = _EvilAdversary(alpha=0.5)
        net = CongestedClique(4, bandwidth=2, adversary=adv)
        payload = full_matrix(4, 3)
        delivered = net.round(payload, width=2)
        # only the (0,1) edge may differ, in both directions
        differences = np.argwhere(delivered != payload)
        assert {tuple(d) for d in differences} <= {(0, 1), (1, 0)}
        assert net.entries_corrupted == 2

    def test_budget_violation_raises(self):
        adv = _OverBudgetAdversary(alpha=0.25)
        net = CongestedClique(8, bandwidth=1, adversary=adv)
        with pytest.raises(FaultBudgetViolation):
            net.round(full_matrix(8))

    def test_diagonal_never_corrupted(self):
        adv = _EvilAdversary(alpha=1.0)
        net = CongestedClique(4, bandwidth=2, adversary=adv)
        payload = full_matrix(4, 2)
        delivered = net.round(payload, width=2)
        assert np.array_equal(np.diag(delivered), np.diag(payload))

    def test_null_adversary(self):
        net = CongestedClique(4, adversary=NullAdversary())
        assert net.fault_free()


class TestExchange:
    def test_wide_exchange_chunks(self):
        net = CongestedClique(4, bandwidth=3)
        payload = np.arange(16).reshape(4, 4).astype(np.int64) * 17 % 256
        delivered = net.exchange(payload, width=8)
        assert np.array_equal(delivered, payload)
        assert net.rounds_used == 3  # ceil(8 / 3)

    def test_exchange_preserves_absent(self):
        net = CongestedClique(4, bandwidth=2)
        payload = np.full((4, 4), -1, dtype=np.int64)
        payload[1, 2] = 9
        delivered = net.exchange(payload, width=4)
        assert delivered[1, 2] == 9
        assert delivered[0, 1] == -1

    def test_exchange_bits(self):
        net = CongestedClique(4, bandwidth=5)
        rng = np.random.default_rng(0)
        bits = rng.integers(0, 2, size=(4, 4, 13)).astype(np.uint8)
        present = np.ones((4, 4), dtype=bool)
        out, dropped = net.exchange_bits(bits, present)
        assert np.array_equal(out, bits)
        assert not dropped.any()  # fault-free: nothing is ever dropped
        assert net.rounds_used == 3  # ceil(13 / 5)

    def test_exchange_bits_absent_zero_filled(self):
        net = CongestedClique(4, bandwidth=4)
        bits = np.ones((4, 4, 6), dtype=np.uint8)
        present = np.zeros((4, 4), dtype=bool)
        present[0, 1] = True
        out, dropped = net.exchange_bits(bits, present)
        assert out[0, 1].all()
        assert not out[2, 3].any()
        # absent entries are not "dropped": nothing was sent on them
        assert not dropped.any()

    def test_exchange_bits_shape_check(self):
        net = CongestedClique(4)
        with pytest.raises(ValueError):
            net.exchange_bits(np.zeros((3, 3, 2), dtype=np.uint8),
                              np.ones((3, 3), dtype=bool))


class TestRoundManyAdversarialParity:
    """``round_many`` must be *semantically identical* to the equivalent
    sequence of ``round()`` calls even with a live adversary attached —
    same delivered stacks, same history entries, same round/bit/corruption
    counters (the fast path may only engage on the fault-free clique)."""

    N = 8
    ROUNDS = 6

    def _stack(self, seed):
        rng = np.random.default_rng(seed)
        stack = rng.integers(0, 8, size=(self.ROUNDS, self.N, self.N),
                             dtype=np.int64)
        stack[0, 1, 2] = -1  # an absent entry rides along
        widths = [3] * self.ROUNDS
        labels = [f"r{i}" for i in range(self.ROUNDS)]
        return stack, widths, labels

    def _nets(self):
        from repro.adversary import AdaptiveAdversary
        return (CongestedClique(self.N, bandwidth=4,
                                adversary=AdaptiveAdversary(1 / 4, seed=9)),
                CongestedClique(self.N, bandwidth=4,
                                adversary=AdaptiveAdversary(1 / 4, seed=9)))

    def test_bit_identical_to_round_sequence(self):
        net_many, net_loop = self._nets()
        stack, widths, labels = self._stack(3)
        got_many = net_many.round_many(stack, widths, labels)
        got_loop = np.stack([net_loop.round(stack[i], widths[i], labels[i])
                             for i in range(self.ROUNDS)])
        assert np.array_equal(got_many, got_loop)
        # the adversary corrupted something, so the parity is non-trivial
        assert net_loop.entries_corrupted > 0

    def test_counters_and_history_match(self):
        net_many, net_loop = self._nets()
        stack, widths, labels = self._stack(4)
        net_many.round_many(stack, widths, labels)
        for i in range(self.ROUNDS):
            net_loop.round(stack[i], widths[i], labels[i])
        assert net_many.rounds_used == net_loop.rounds_used == self.ROUNDS
        assert net_many.bits_sent == net_loop.bits_sent
        assert net_many.entries_corrupted == net_loop.entries_corrupted
        for h_many, h_loop in zip(net_many.history, net_loop.history):
            assert h_many.index == h_loop.index
            assert h_many.width == h_loop.width
            assert h_many.label == h_loop.label
            assert h_many.corrupted_entries == h_loop.corrupted_entries


class TestHistory:
    def test_history_records_labels(self):
        net = CongestedClique(4, bandwidth=1)
        net.round(full_matrix(4), label="step-a")
        net.round(full_matrix(4), label="step-b")
        assert [h.label for h in net.history] == ["step-a", "step-b"]

    def test_full_history_recording(self):
        net = CongestedClique(4, bandwidth=1, record_full_history=True)
        payload = full_matrix(4)
        net.round(payload)
        assert np.array_equal(net.history[0].intended, payload)
        assert net.history[0].fault_edges is not None

    def test_lean_history_drops_matrices(self):
        net = CongestedClique(4, bandwidth=1)
        net.round(full_matrix(4))
        assert net.history[0].intended is None
