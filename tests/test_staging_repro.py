"""Staged-plane vs uint8-staging parity, and bit-for-bit seed reproduction.

The PR that moved the protocol compilers onto direct word-plane staging
must be a pure representation change: the planes crossing the transport,
and therefore every adversary decision and every delivered bit, are
identical to the uint8-staging pipeline.  These tests pin that down at two
levels — the staging kernels themselves, and a full adaptive n=16 run whose
output digest was recorded against the pre-refactor implementation.
"""

import hashlib

import numpy as np
import pytest

from repro.adversary import AdaptiveAdversary, NullAdversary
from repro.cliquesim.network import CongestedClique
from repro.core import AllToAllInstance
from repro.core.adaptive import AdaptiveAllToAll
from repro.perf import reference
from repro.utils.bits import pack_bits, pack_symbols, unpack_symbols
from repro.utils.rng import make_rng


class TestStagingParity:
    """Direct plane staging == bit-expand-then-pack uint8 staging."""

    @pytest.mark.parametrize("sym_bits", [1, 3, 6, 7, 13, 31])
    def test_pack_symbols_matches_uint8_staging(self, sym_bits):
        rng = make_rng(sym_bits)
        symbols = rng.integers(0, 1 << sym_bits, size=(6, 6, 23))
        assert np.array_equal(pack_symbols(symbols, sym_bits),
                              reference.stage_symbols_uint8(symbols, sym_bits))

    @pytest.mark.parametrize("sym_bits", [1, 5, 7, 13])
    def test_unpack_symbols_round_trip(self, sym_bits):
        rng = make_rng(100 + sym_bits)
        symbols = rng.integers(0, 1 << sym_bits, size=(4, 17))
        planes = pack_symbols(symbols, sym_bits)
        assert np.array_equal(unpack_symbols(planes, 17, sym_bits), symbols)

    def test_exchange_words_equals_exchange_bits(self):
        """Callers staging planes directly see the same transport as
        callers shipping uint8 tensors through ``exchange_bits``."""
        n, width = 8, 45
        rng = make_rng(7)
        bits = rng.integers(0, 2, size=(n, n, width), dtype=np.uint8)
        present = np.ones((n, n), dtype=bool)
        via_bits, drop_a = CongestedClique(n, bandwidth=8).exchange_bits(
            bits, present)
        via_words, drop_b = CongestedClique(n, bandwidth=8).exchange_words(
            pack_bits(bits), present, width)
        assert np.array_equal(pack_bits(via_bits), via_words)
        assert np.array_equal(drop_a, drop_b)


@pytest.mark.slow
class TestAdaptiveSeedReproduction:
    """An n=16 adaptive run reproduces the pre-refactor outputs
    bit-for-bit: same belief matrix (sha256 over the int64 buffer), same
    round/bit/corruption counters.  The digests below were recorded against
    the uint8-staging implementation this PR replaced."""

    CASES = {
        "null": (
            "14be4873b718c4019b31ddbfd48b30b98f71513233f0d96cd7abeecaca4abb0f",
            159, 1160640, 0),
        "adaptive": (
            "389f4b976dd3584594c37a990178173436577ef37bf043a3012932cd9ee7bb57",
            64, 434880, 1024),
    }

    def _run(self, adversary):
        instance = AllToAllInstance.random(16, width=1, seed=7)
        protocol = AdaptiveAllToAll()
        net = CongestedClique(16, bandwidth=32, adversary=adversary)
        beliefs = protocol.run(instance, net, seed=11)
        digest = hashlib.sha256(
            np.ascontiguousarray(beliefs, dtype=np.int64).tobytes()
        ).hexdigest()
        return protocol, net, digest

    def test_fault_free_run_reproduces_seed(self):
        _, net, digest = self._run(NullAdversary())
        expected = self.CASES["null"]
        assert (digest, net.rounds_used, net.bits_sent,
                net.entries_corrupted) == expected

    def test_adversarial_run_reproduces_seed(self):
        protocol, net, digest = self._run(AdaptiveAdversary(1 / 16, seed=5))
        expected = self.CASES["adaptive"]
        assert (digest, net.rounds_used, net.bits_sent,
                net.entries_corrupted) == expected
        # the new drop accounting rides along without changing the run
        assert "dropped_scatter_entries" in protocol.diagnostics
        assert "routing_dropped_entries" in protocol.diagnostics
