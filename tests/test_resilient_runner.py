"""Crash-tolerant campaign execution (`repro.faults.resilience`).

The acceptance contract: a campaign killed mid-run (SIGKILL, no cleanup)
resumes to the exact same row set as an undisturbed run, under both the
serial and vmap backends; chaos-injected timeouts heal through retries
into bit-identical rows; a torn final store line is quarantined and its
trial re-runs; and a per-trial adversary crash inside a batched cell
degrades only that trial, with the reason recorded on its row.
"""

import json
import os
import signal
import subprocess
import sys
import time

import numpy as np
import pytest

from repro.experiments import TrialStore, free_grid, run_campaign
from repro.experiments.runner import STATUS_ERROR
from repro.faults import (CHAOS_TIMEOUT_ENV, ResiliencePolicy, TrialTimeout,
                          execute_trial_resilient, trial_alarm)

#: fields that legitimately differ between executions of the same trial
BOOKKEEPING_FIELDS = ("wall_seconds", "recorded_unix", "attempts", "fallback")


def spec_small(name, replicates=6, n=16):
    return free_grid(name=name, protocols=("nonadaptive",),
                     adversaries=("iid-erase",), ns=(n,), alphas=(0.09,),
                     widths=(8,), replicates=replicates)


def digest(rows):
    clean = []
    for row in sorted(rows, key=lambda r: r["hash"]):
        row = {k: v for k, v in row.items() if k not in BOOKKEEPING_FIELDS}
        clean.append(json.dumps(row, sort_keys=True))
    return "\n".join(clean)


class TestPolicy:
    def test_policy_validation(self):
        with pytest.raises(ValueError):
            ResiliencePolicy(timeout_seconds=0)
        with pytest.raises(ValueError):
            ResiliencePolicy(retries=-1)
        assert not ResiliencePolicy().active
        assert ResiliencePolicy(retries=1).active
        assert ResiliencePolicy(timeout_seconds=5).active

    def test_trial_alarm_fires(self):
        with pytest.raises(TrialTimeout):
            with trial_alarm(0.05):
                time.sleep(2.0)

    def test_trial_alarm_none_is_noop(self):
        with trial_alarm(None):
            pass


class TestChaosRetries:
    @pytest.fixture(autouse=True)
    def chaos_env(self, monkeypatch):
        monkeypatch.setenv(CHAOS_TIMEOUT_ENV, "0.4")

    @pytest.mark.parametrize("backend", ["serial", "vmap"])
    def test_retried_rows_bit_identical(self, backend, monkeypatch):
        spec = spec_small(f"chaos-{backend}", replicates=8)
        monkeypatch.delenv(CHAOS_TIMEOUT_ENV)
        baseline = run_campaign(spec, TrialStore(), backend=backend)
        monkeypatch.setenv(CHAOS_TIMEOUT_ENV, "0.4")
        policy = ResiliencePolicy(retries=2, backoff_seconds=0.0)
        chaotic = run_campaign(spec, TrialStore(), backend=backend,
                               policy=policy)
        retried = [r for r in chaotic.rows() if r.get("attempts", 1) > 1]
        assert retried, "chaos at 0.4 must hit some of 8 trials"
        assert chaotic.errors == 0
        assert digest(chaotic.rows()) == digest(baseline.rows())

    def test_no_retries_leaves_error_rows(self):
        spec = spec_small("chaos-noretry", replicates=8)
        result = run_campaign(spec, TrialStore(), backend="serial",
                              policy=ResiliencePolicy(retries=0))
        errors = [r for r in result.rows() if r.get("status") == STATUS_ERROR]
        assert errors
        assert all("chaos-injected" in r["reason"] for r in errors)

    def test_resume_heals_chaos_errors(self, monkeypatch):
        """Error rows from a crashed/chaotic run re-execute on resume and
        converge to the undisturbed digest."""
        spec = spec_small("chaos-resume", replicates=8)
        store = TrialStore()
        run_campaign(spec, store, backend="serial",
                     policy=ResiliencePolicy(retries=0))
        assert any(r.get("status") == STATUS_ERROR for r in store.rows())
        monkeypatch.delenv(CHAOS_TIMEOUT_ENV)
        healed = run_campaign(spec, store, backend="serial", resume=True)
        assert healed.errors == 0
        baseline = run_campaign(spec, TrialStore(), backend="serial")
        assert digest(healed.rows()) == digest(baseline.rows())


class TestTornStore:
    def test_torn_tail_quarantined_and_rerun(self, tmp_path):
        spec = spec_small("torn", replicates=4)
        path = str(tmp_path / "torn.jsonl")
        with TrialStore(path) as store:
            run_campaign(spec, store, backend="serial")
            complete = len(store.rows())
        # tear the final line mid-byte, as a SIGKILL mid-write would
        with open(path, "rb") as fh:
            data = fh.read()
        with open(path, "wb") as fh:
            fh.write(data[:-17])
        reloaded = TrialStore(path)
        assert reloaded.torn == 1
        assert len(reloaded.rows()) == complete - 1
        assert os.path.exists(path + ".torn")
        with open(path, "rb") as fh:
            assert fh.read().endswith(b"\n")  # truncated back to a clean tail
        # the torn trial is pending again; resume completes the set exactly
        result = run_campaign(spec, reloaded, resume=True, backend="serial")
        assert result.executed == 1 and result.cached >= 3
        fresh = run_campaign(spec, TrialStore(), backend="serial")
        assert digest([r for r in reloaded.rows() if "trial" in r]) \
            == digest(fresh.rows())

    def test_midfile_garbage_skipped(self, tmp_path):
        path = str(tmp_path / "garbage.jsonl")
        with TrialStore(path) as store:
            store.append({"hash": "a", "status": "ok"})
        with open(path, "ab") as fh:
            fh.write(b"\x80\x81 not json\n")
        with TrialStore(path) as store:
            store.append({"hash": "b", "status": "ok"})
        reloaded = TrialStore(path)
        assert reloaded.torn == 1
        assert set(r["hash"] for r in reloaded.rows()) == {"a", "b"}

    def test_watch_tolerates_torn_tail(self, tmp_path):
        from repro.obs.watch import read_rows
        path = str(tmp_path / "live.jsonl")
        with TrialStore(path) as store:
            store.append({"hash": "a", "status": "ok"})
        with open(path, "ab") as fh:
            fh.write(b'{"hash": "b", "stat')  # in-flight append, no newline
        rows = read_rows(path)
        assert [r["hash"] for r in rows] == ["a"]


@pytest.mark.parametrize("backend", ["serial", "vmap"])
class TestSigkillResume:
    def test_sigkill_then_resume_matches_undisturbed(self, backend,
                                                     tmp_path):
        """SIGKILL a campaign subprocess mid-run; resume must complete the
        store to the exact undisturbed row set — no duplicates, no losses,
        bit-identical payloads."""
        spec = spec_small(f"kill-{backend}", replicates=10)
        path = str(tmp_path / "killed.jsonl")
        child = subprocess.Popen(
            [sys.executable, "-c",
             "import json, sys\n"
             "from repro.experiments import TrialStore, free_grid, "
             "run_campaign\n"
             f"spec = free_grid(name='kill-{backend}', "
             "protocols=('nonadaptive',), adversaries=('iid-erase',), "
             "ns=(16,), alphas=(0.09,), widths=(8,), replicates=10)\n"
             f"run_campaign(spec, TrialStore({path!r}), "
             f"backend={backend!r})\n"],
            env=dict(os.environ,
                     PYTHONPATH=os.path.join(os.path.dirname(__file__),
                                             "..", "src")),
        )
        deadline = time.time() + 60
        while time.time() < deadline:
            if os.path.exists(path) and len(TrialStore(path)) >= 2:
                break
            if child.poll() is not None:
                break
            time.sleep(0.02)
        child.kill()
        child.wait()

        store = TrialStore(path)
        interrupted = len([r for r in store.rows() if "trial" in r])
        result = run_campaign(spec, store, resume=True, backend=backend)
        assert result.executed + result.cached == result.total
        fresh = run_campaign(spec, TrialStore(), backend=backend)
        trial_rows = [r for r in store.rows() if "trial" in r]
        assert digest(trial_rows) == digest(
            [r for r in fresh.rows() if "trial" in r])
        # every trial appears exactly once in the resumed result set
        hashes = [r["hash"] for r in trial_rows]
        assert len(hashes) == len(set(hashes)) == result.total
        assert interrupted <= result.total


class TestPerTrialFallback:
    def test_one_crashing_adversary_degrades_one_trial(self, monkeypatch):
        from repro.adversary import (NonAdaptiveAdversary,
                                     PerTrialAdversaryBatch)
        from repro.experiments import vmap as vmap_mod
        from repro.experiments.runner import execute_trial

        spec = free_grid(name="flaky", protocols=("nonadaptive",),
                         adversaries=("nonadaptive",), ns=(16,),
                         alphas=(0.12,), widths=(8,), replicates=6)
        trials = spec.trials()
        boom_seed = trials[2].adversary_seed

        class Flaky(NonAdaptiveAdversary):
            def __init__(self, alpha, seed):
                super().__init__(alpha, seed=seed)
                self._seed = seed

            def select_edges(self, view):
                if self._seed == boom_seed and view.index == 1:
                    raise RuntimeError("flaky adversary")
                return super().select_edges(view)

        monkeypatch.setattr(
            vmap_mod, "make_batched_adversary",
            lambda kind, alpha, seeds: PerTrialAdversaryBatch(
                [Flaky(alpha, s) for s in seeds]))

        rows = vmap_mod.run_cell_batched(trials)
        assert [r["hash"] for r in rows] == \
            [t.content_hash() for t in trials]
        assert "fallback" in rows[2]
        assert "flaky adversary" in rows[2]["fallback"]
        assert all("fallback" not in r for i, r in enumerate(rows) if i != 2)
        # the fallback row and the survivors match plain serial execution
        baseline = [execute_trial(t.to_dict()) for t in trials]
        assert digest(rows) == digest(baseline)


class TestStochasticBudgetCampaign:
    def test_channel_trials_report_transit_corruption(self):
        """A corrupt-mode channel campaign shows nonzero in-transit
        corruption (the chaos is real) yet decodes to full accuracy."""
        spec = free_grid(name="budget", protocols=("nonadaptive",),
                         adversaries=("iid-corrupt",), ns=(16,),
                         alphas=(0.09,), widths=(8,), replicates=3)
        result = run_campaign(spec, TrialStore(), backend="serial")
        ok = [r for r in result.rows() if r.get("status") == "ok"]
        assert ok
        assert any(r["entries_corrupted"] > 0 for r in ok)
        assert all(r["accuracy"] == 1.0 for r in ok)
