"""Integration tests for the round-by-round compiler (Definition 1)."""

import numpy as np
import pytest

from repro.adversary import AdaptiveAdversary, NullAdversary
from repro.baseline import NaiveAllToAll
from repro.core.cc_programs import (
    IterativeMax,
    MatrixTranspose,
    RotationGossip,
)
from repro.core.compiler import compile_and_run
from repro.core.det_logn import DetLogAllToAll
from repro.core.det_sqrt import DetSqrtAllToAll


class TestPrograms:
    def test_rotation_gossip_ground_truth_deterministic(self):
        program = RotationGossip(rounds=3)
        a = program.run_fault_free(16, seed=1)
        b = program.run_fault_free(16, seed=1)
        assert np.array_equal(a, b)

    def test_transpose_ground_truth(self):
        program = MatrixTranspose()
        state = program.run_fault_free(8, seed=2)
        initial = program.initial_state(8, seed=2)
        assert np.array_equal(state, initial.T)

    def test_iterative_max_converges(self):
        program = IterativeMax(rounds=1)
        state = program.run_fault_free(8, seed=3)
        initial = program.initial_state(8, seed=3)
        assert np.all(state == initial.max())


class TestCompilation:
    @pytest.mark.parametrize("program_factory", [
        lambda: RotationGossip(rounds=2, width=4),
        lambda: MatrixTranspose(width=4),
        lambda: IterativeMax(rounds=1, width=6),
    ])
    def test_fault_free_simulation_exact(self, program_factory):
        report = compile_and_run(program_factory(), DetSqrtAllToAll(), n=16,
                                 adversary=NullAdversary(), bandwidth=16)
        assert report.final_state_correct
        assert all(a == 1.0 for a in report.per_round_message_accuracy)

    def test_simulation_under_adversary(self):
        report = compile_and_run(RotationGossip(rounds=2, width=4),
                                 DetLogAllToAll(), n=16,
                                 adversary=AdaptiveAdversary(1 / 16, seed=1),
                                 bandwidth=16)
        assert report.final_state_correct

    def test_overhead_measured(self):
        report = compile_and_run(RotationGossip(rounds=2, width=4),
                                 DetSqrtAllToAll(), n=16,
                                 adversary=NullAdversary(), bandwidth=16)
        assert report.overhead == report.simulated_rounds / 2
        assert report.simulated_rounds > 2  # resilience is not free

    def test_naive_compilation_diverges_under_attack(self):
        """Compiling through the unprotected exchange corrupts the state —
        the reason the resilient compilers exist."""
        report = compile_and_run(RotationGossip(rounds=3, width=8),
                                 NaiveAllToAll(), n=32,
                                 adversary=AdaptiveAdversary(1 / 8, seed=2),
                                 bandwidth=16)
        assert not report.final_state_correct
