"""Public-API smoke tests: everything README/DESIGN advertises imports and
carries a docstring (a downstream user's first contact with the library)."""

import importlib

import pytest

PUBLIC_MODULES = [
    "repro",
    "repro.adversary",
    "repro.analysis",
    "repro.baseline",
    "repro.cliquesim",
    "repro.coding",
    "repro.core",
    "repro.coverfree",
    "repro.fields",
    "repro.hashing",
    "repro.sketch",
    "repro.utils",
    "repro.cli",
    "repro.experiments",
    "repro.experiments.spec",
    "repro.experiments.runner",
    "repro.experiments.store",
    "repro.experiments.aggregate",
    "repro.experiments.registry",
    "repro.experiments.report",
    "repro.cliquesim.trace",
    "repro.core.applications",
    "repro.core.bandwidth_reduction",
    "repro.core.reduction",
]


@pytest.mark.parametrize("module_name", PUBLIC_MODULES)
def test_module_imports_with_docstring(module_name):
    module = importlib.import_module(module_name)
    assert module.__doc__, f"{module_name} lacks a module docstring"


@pytest.mark.parametrize("module_name", [
    "repro.adversary", "repro.analysis", "repro.baseline",
    "repro.cliquesim", "repro.coding", "repro.core", "repro.coverfree",
    "repro.experiments", "repro.fields", "repro.hashing", "repro.sketch",
    "repro.utils",
])
def test_all_exports_resolve(module_name):
    module = importlib.import_module(module_name)
    for name in getattr(module, "__all__", []):
        assert hasattr(module, name), f"{module_name}.{name} missing"


def test_readme_quickstart_symbols():
    from repro.adversary import AdaptiveAdversary            # noqa: F401
    from repro.core import AllToAllInstance, run_protocol    # noqa: F401
    from repro.core.det_sqrt import DetSqrtAllToAll          # noqa: F401


def test_every_protocol_has_name_and_doc():
    from repro.baseline import (FischerParterStyleAllToAll, NaiveAllToAll,
                                RetransmissionAllToAll)
    from repro.core.alltoall import PROTOCOLS, make_protocol
    protocols = [make_protocol(name) for name in PROTOCOLS]
    protocols += [NaiveAllToAll(), RetransmissionAllToAll(),
                  FischerParterStyleAllToAll()]
    names = set()
    for protocol in protocols:
        assert protocol.name and protocol.name != "abstract"
        assert type(protocol).__doc__
        assert protocol.name not in names, "duplicate protocol name"
        names.add(protocol.name)


def test_version():
    import repro
    assert repro.__version__
