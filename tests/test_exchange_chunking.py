"""Chunk-splitting round-trips for ``CongestedClique.exchange`` and
``exchange_bits``: payloads wider than the bandwidth are split into
``ceil(width / B)`` rounds and reassembled bit-exactly, and an adversary
corrupting individual chunks can only ever affect entries that cross its
faulty edges."""

import numpy as np
import pytest

from repro.adversary.base import Adversary
from repro.cliquesim.network import CongestedClique
from repro.utils.rng import make_rng


class FixedEdgesAdversary(Adversary):
    """Corrupts a fixed symmetric edge set every round (within budget)."""

    def __init__(self, alpha: float, edges, seed: int = 0):
        super().__init__(alpha, seed=seed)
        self.edges = [tuple(e) for e in edges]

    def select_edges(self, view):
        mask = np.zeros((self.n, self.n), dtype=bool)
        for u, v in self.edges:
            mask[u, v] = mask[v, u] = True
        return mask

    def corrupt(self, view, edges):
        delivered = view.intended.copy()
        mask = np.asarray(edges, dtype=bool)
        # worst-case content attack for reassembly: flip every payload bit
        # of every chunk crossing a faulty edge (and fabricate on silence)
        high = (np.int64(1) << view.width) - 1
        delivered[mask] = np.where(delivered[mask] >= 0,
                                   delivered[mask] ^ high, high)
        return delivered


def wide_payloads(n: int, width: int, seed: int = 0) -> np.ndarray:
    rng = make_rng(seed)
    return rng.integers(0, np.int64(1) << width, size=(n, n), dtype=np.int64)


class TestExchangeFaultFree:
    @pytest.mark.parametrize("width,bandwidth", [(8, 3), (16, 5), (20, 20),
                                                 (62, 7)])
    def test_round_trip_bit_exact(self, width, bandwidth):
        n = 8
        net = CongestedClique(n, bandwidth=bandwidth)
        intended = wide_payloads(n, width, seed=width)
        got = net.exchange(intended, width=width)
        assert np.array_equal(got, intended)
        assert net.rounds_used == -(-width // bandwidth)

    def test_absent_entries_stay_absent(self):
        n = 6
        net = CongestedClique(n, bandwidth=3)
        intended = wide_payloads(n, 10, seed=3)
        intended[1, 4] = -1
        intended[2, :] = -1
        got = net.exchange(intended, width=10)
        assert got[1, 4] == -1
        assert np.all(got[2, :][np.arange(n) != 2] == -1)
        present = intended >= 0
        assert np.array_equal(got[present], intended[present])

    def test_exchange_bits_round_trip(self):
        n = 6
        width = 70  # wider than any int64 payload — the bit-tensor path
        net = CongestedClique(n, bandwidth=16)
        rng = make_rng(7)
        bits = rng.integers(0, 2, size=(n, n, width)).astype(np.uint8)
        present = np.ones((n, n), dtype=bool)
        got, dropped = net.exchange_bits(bits, present)
        assert np.array_equal(got, bits)
        assert not dropped.any()
        assert net.rounds_used == -(-width // 16)


class TestExchangeUnderFaults:
    N = 8
    EDGES = [(0, 3), (5, 6)]
    ALPHA = 1 / 4  # budget = 2 faulty edges per node at n=8

    def faulty_mask(self):
        mask = np.zeros((self.N, self.N), dtype=bool)
        for u, v in self.EDGES:
            mask[u, v] = mask[v, u] = True
        return mask

    def test_exchange_corruption_confined_to_faulty_edges(self):
        net = CongestedClique(
            self.N, bandwidth=3,
            adversary=FixedEdgesAdversary(self.ALPHA, self.EDGES))
        intended = wide_payloads(self.N, 9, seed=11)
        got = net.exchange(intended, width=9)
        mask = self.faulty_mask()
        # every clean entry reassembles bit-exactly across all 3 chunks
        assert np.array_equal(got[~mask], intended[~mask])
        # the attack flips every chunk, so faulty entries must differ
        assert np.all(got[mask] != intended[mask])

    def test_exchange_bits_corruption_confined(self):
        net = CongestedClique(
            self.N, bandwidth=4,
            adversary=FixedEdgesAdversary(self.ALPHA, self.EDGES))
        rng = make_rng(13)
        width = 22
        bits = rng.integers(0, 2, size=(self.N, self.N, width)).astype(np.uint8)
        got, dropped = net.exchange_bits(
            bits, np.ones((self.N, self.N), dtype=bool))
        mask = self.faulty_mask()
        assert np.array_equal(got[~mask], bits[~mask])
        assert np.all(np.any(got[mask] != bits[mask], axis=-1))
        # this attack flips content but never silences, so no drops
        assert not dropped.any()

    def test_dropped_chunk_marks_entry_missing(self):
        net = CongestedClique(
            self.N, bandwidth=3,
            adversary=DropChunkAdversary(self.ALPHA, self.EDGES))
        intended = wide_payloads(self.N, 9, seed=17)
        got = net.exchange(intended, width=9)
        mask = self.faulty_mask()
        assert np.all(got[mask] == -1)
        assert np.array_equal(got[~mask], intended[~mask])


class DropChunkAdversary(FixedEdgesAdversary):
    """Silences ("no message") every chunk crossing its faulty edges."""

    def corrupt(self, view, edges):
        delivered = view.intended.copy()
        delivered[np.asarray(edges, dtype=bool)] = -1
        return delivered


class TestDropSignal:
    """Regression: zero-filling dropped chunks must not erase the
    adversary's "dropped" signal — ``exchange_words`` / ``exchange_bits``
    return an explicit mask so a dropped payload is distinguishable from a
    legitimate all-zero one."""

    N = 8
    EDGES = [(0, 3), (5, 6)]
    ALPHA = 1 / 4

    def faulty_mask(self):
        mask = np.zeros((self.N, self.N), dtype=bool)
        for u, v in self.EDGES:
            mask[u, v] = mask[v, u] = True
        return mask

    def _net(self):
        return CongestedClique(
            self.N, bandwidth=4,
            adversary=DropChunkAdversary(self.ALPHA, self.EDGES))

    def test_exchange_bits_surfaces_drops(self):
        # all-zero payloads everywhere: without the mask, dropped entries
        # would be byte-identical to delivered ones
        bits = np.zeros((self.N, self.N, 11), dtype=np.uint8)
        got, dropped = self._net().exchange_bits(
            bits, np.ones((self.N, self.N), dtype=bool))
        mask = self.faulty_mask()
        assert np.array_equal(dropped, mask)
        assert not got.any()  # dropped chunks are still zero-filled

    def test_exchange_words_surfaces_drops(self):
        rng = make_rng(23)
        words = rng.integers(0, 1 << 30, size=(self.N, self.N, 2)
                             ).astype(np.uint64)
        present = np.ones((self.N, self.N), dtype=bool)
        present[0, 3] = False  # a faulty edge with nothing sent on it
        got, dropped = self._net().exchange_words(words, present, width=128)
        mask = self.faulty_mask()
        # absent entries are never "dropped" — nothing was sent there
        expected = mask & present
        assert np.array_equal(dropped, expected)
        clean = present & ~mask
        assert np.array_equal(got[clean], words[clean])
        assert not got[~present].any()
        assert not got[mask].any()  # every chunk silenced -> zero-filled
