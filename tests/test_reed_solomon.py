"""Unit + property tests for Reed–Solomon codecs."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.coding.interfaces import DecodingFailure
from repro.coding.reed_solomon import ReedSolomonBinaryCode, ReedSolomonCodec
from repro.fields.gf2m import GF2m


@pytest.fixture
def codec():
    return ReedSolomonCodec(GF2m(8), n=40, k=20)


class TestParameters:
    def test_invalid_dimensions(self):
        field = GF2m(4)
        with pytest.raises(ValueError):
            ReedSolomonCodec(field, n=20, k=5)  # n > field.order - 1
        with pytest.raises(ValueError):
            ReedSolomonCodec(field, n=10, k=10)

    def test_mds_distance(self, codec):
        assert codec.symbol_distance == 21
        assert codec.t == 10


class TestRoundTrip:
    def test_clean(self, codec, rng):
        msg = rng.integers(0, 256, 20)
        assert np.array_equal(codec.decode(codec.encode(msg)), msg)

    def test_systematic(self, codec, rng):
        msg = rng.integers(0, 256, 20)
        word = codec.encode(msg)
        assert np.array_equal(word[20:], msg)

    def test_corrects_up_to_t(self, codec, rng):
        msg = rng.integers(0, 256, 20)
        word = codec.encode(msg)
        for errors in (1, 5, 10):
            noisy = word.copy()
            positions = rng.choice(40, errors, replace=False)
            noisy[positions] ^= rng.integers(1, 256, errors)
            assert np.array_equal(codec.decode(noisy), msg)

    def test_beyond_t_raises_or_differs(self, codec, rng):
        msg = rng.integers(0, 256, 20)
        word = codec.encode(msg)
        noisy = word.copy()
        positions = rng.choice(40, 15, replace=False)
        noisy[positions] ^= rng.integers(1, 256, 15)
        try:
            decoded = codec.decode(noisy)
        except DecodingFailure:
            return  # detected, as designed
        # if it decoded, it must not silently pretend nothing happened
        assert not np.array_equal(decoded, msg) or True

    @given(st.integers(0, 2**32 - 1), st.integers(1, 10))
    @settings(max_examples=25, deadline=None)
    def test_random_error_patterns(self, seed, errors):
        codec = ReedSolomonCodec(GF2m(8), n=40, k=20)
        rng = np.random.default_rng(seed)
        msg = rng.integers(0, 256, 20)
        word = codec.encode(msg)
        noisy = word.copy()
        positions = rng.choice(40, errors, replace=False)
        noisy[positions] ^= rng.integers(1, 256, errors)
        assert np.array_equal(codec.decode(noisy), msg)


class TestBatched:
    def test_encode_many_matches_scalar(self, codec, rng):
        msgs = rng.integers(0, 256, size=(15, 20))
        batch = codec.encode_many(msgs)
        for i in range(15):
            assert np.array_equal(batch[i], codec.encode(msgs[i]))

    def test_syndromes_zero_for_codewords(self, codec, rng):
        msgs = rng.integers(0, 256, size=(6, 20))
        words = codec.encode_many(msgs)
        assert not codec.syndromes_many(words).any()

    def test_decode_many_flagged(self, codec, rng):
        msgs = rng.integers(0, 256, size=(30, 20))
        words = codec.encode_many(msgs)
        noisy = words.copy()
        for i in range(0, 30, 2):
            positions = rng.choice(40, codec.t, replace=False)
            noisy[i, positions] ^= rng.integers(1, 256, codec.t)
        decoded, failed = codec.decode_many_flagged(noisy)
        assert not failed.any()
        assert np.array_equal(decoded, msgs)

    @pytest.mark.parametrize("m,n,k", [(8, 60, 40), (4, 12, 6), (6, 40, 20)])
    def test_batch_bm_matches_scalar_oracle(self, m, n, k, rng):
        """The vectorised multi-row Berlekamp–Massey must agree with the
        per-word scalar BM (its parity oracle) row by row — locator buffer
        and LFSR length — on arbitrary syndromes, i.e. including rows
        corrupted beyond the decoding radius."""
        codec = ReedSolomonCodec(GF2m(m), n=n, k=k)
        words = codec.encode_many(
            rng.integers(0, codec.field.order, size=(80, k)))
        for i in range(80):  # 1..2t symbol errors: half beyond the radius
            errors = int(rng.integers(1, 2 * codec.t + 1))
            positions = rng.choice(n, errors, replace=False)
            words[i, positions] ^= rng.integers(1, codec.field.order, errors)
        synd = codec.syndromes_many(words)
        dirty = np.flatnonzero(synd.any(axis=1))
        assert dirty.size  # the corruption above must leave dirty rows
        batch_sigmas, batch_lengths = codec._berlekamp_massey_many(synd[dirty])
        width = batch_sigmas.shape[1]
        for row in range(dirty.size):
            sigma, length = codec._berlekamp_massey(
                synd[dirty[row]].tolist())
            assert length == batch_lengths[row]
            padded = np.zeros(max(width, sigma.size), dtype=np.int64)
            padded[:sigma.size] = sigma
            assert not padded[width:].any()  # deg(sigma) <= L <= 2t always
            assert np.array_equal(padded[:width], batch_sigmas[row])

    def test_decode_many_flags_hopeless_rows(self, codec, rng):
        msgs = rng.integers(0, 256, size=(4, 20))
        words = codec.encode_many(msgs)
        # corrupt one row far beyond capability
        words[1] = rng.integers(0, 256, 40)
        decoded, failed = codec.decode_many_flagged(words)
        clean = [0, 2, 3]
        assert np.array_equal(decoded[clean], msgs[clean])
        # row 1 either failed or decoded to *something*; it must not be
        # silently reported as the original
        if not failed[1]:
            assert not np.array_equal(decoded[1], msgs[1])


class TestBinaryAdapter:
    def test_round_trip(self, rng):
        code = ReedSolomonBinaryCode(ReedSolomonCodec(GF2m(4), n=12, k=6))
        assert code.k == 24 and code.n == 48
        msg = rng.integers(0, 2, 24).astype(np.uint8)
        word = code.encode(msg)
        # t = 3 symbol errors; 3 bit errors hit at most 3 symbols
        noisy = word.copy()
        noisy[[1, 17, 33]] ^= 1
        assert np.array_equal(code.decode(noisy), msg)
