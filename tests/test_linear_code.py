"""Unit + property tests for short binary linear codes."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.coding.linear import (
    LinearBlockCode,
    best_effort_linear_code,
    extended_hamming_8_4,
    search_linear_code,
)


class TestExtendedHamming:
    def test_parameters(self):
        code = extended_hamming_8_4()
        assert (code.n, code.k, code.min_distance) == (8, 4, 4)

    def test_round_trip_clean(self):
        code = extended_hamming_8_4()
        for value in range(16):
            msg = np.array([(value >> i) & 1 for i in range(4)],
                           dtype=np.uint8)
            assert np.array_equal(code.decode(code.encode(msg)), msg)

    def test_corrects_single_error(self):
        code = extended_hamming_8_4()
        msg = np.array([1, 0, 1, 1], dtype=np.uint8)
        word = code.encode(msg)
        for position in range(8):
            noisy = word.copy()
            noisy[position] ^= 1
            assert np.array_equal(code.decode(noisy), msg)


class TestLinearBlockCode:
    def test_rejects_rank_deficient(self):
        generator = np.array([[1, 0, 1], [1, 0, 1]], dtype=np.uint8)
        with pytest.raises(ValueError):
            LinearBlockCode(generator)

    def test_rejects_large_k(self):
        with pytest.raises(ValueError):
            LinearBlockCode(np.eye(15, 20, dtype=np.uint8))

    def test_rejects_long_codewords(self):
        with pytest.raises(ValueError):
            LinearBlockCode(np.eye(4, 60, dtype=np.uint8))

    def test_relative_distance(self):
        code = extended_hamming_8_4()
        assert code.relative_distance == pytest.approx(0.5)

    def test_decode_blocks_matches_scalar(self, rng):
        code = extended_hamming_8_4()
        msgs = rng.integers(0, 2, size=(50, 4)).astype(np.uint8)
        words = code.encode_many(msgs)
        noisy = words.copy()
        flips = rng.integers(0, 8, size=50)
        noisy[np.arange(50), flips] ^= 1
        batch = code.decode_blocks(noisy)
        for i in range(50):
            assert np.array_equal(batch[i], code.decode(noisy[i]))

    def test_encode_many_matches_scalar(self, rng):
        code = extended_hamming_8_4()
        msgs = rng.integers(0, 2, size=(20, 4)).astype(np.uint8)
        batch = code.encode_many(msgs)
        for i in range(20):
            assert np.array_equal(batch[i], code.encode(msgs[i]))

    def test_encode_many_empty(self):
        code = extended_hamming_8_4()
        assert code.encode_many(np.zeros((0, 4), dtype=np.uint8)).shape == (0, 8)

    @given(st.integers(0, 15), st.integers(0, 7))
    @settings(max_examples=40)
    def test_single_error_always_corrected(self, value, position):
        code = extended_hamming_8_4()
        msg = np.array([(value >> i) & 1 for i in range(4)], dtype=np.uint8)
        noisy = code.encode(msg)
        noisy[position] ^= 1
        assert np.array_equal(code.decode(noisy), msg)


class TestSearch:
    def test_search_finds_target(self):
        code = search_linear_code(4, 10, 4, seed=1)
        assert code.min_distance >= 4

    def test_search_deterministic(self):
        a = search_linear_code(4, 12, 4, seed=7)
        b = search_linear_code(4, 12, 4, seed=7)
        assert np.array_equal(a.generator, b.generator)

    def test_search_impossible_raises(self):
        # Singleton bound: d <= n - k + 1 = 3
        with pytest.raises(ValueError):
            search_linear_code(4, 6, 5, seed=0, attempts=50)

    def test_best_effort_always_succeeds(self):
        code = best_effort_linear_code(6, 14, seed=2)
        assert code.k == 6 and code.n == 14
        assert code.min_distance >= 2

    def test_best_effort_respects_guarantee(self, rng):
        code = best_effort_linear_code(8, 24, seed=0)
        budget = (code.min_distance - 1) // 2
        msg = rng.integers(0, 2, 8).astype(np.uint8)
        noisy = code.encode(msg)
        flip = rng.choice(24, budget, replace=False)
        noisy[flip] ^= 1
        assert np.array_equal(code.decode(noisy), msg)
