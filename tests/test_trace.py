"""Unit tests for execution telemetry."""

import numpy as np

from repro.adversary import AdaptiveAdversary
from repro.cliquesim.network import CongestedClique
from repro.cliquesim.trace import (
    corruption_rate,
    format_breakdown,
    phase_breakdown,
    phase_of,
)
from repro.core import AllToAllInstance
from repro.core.det_sqrt import DetSqrtAllToAll


class TestPhaseOf:
    def test_strips_chunk_suffix(self):
        assert phase_of("adaptive/scatter[bits32]") == "adaptive"

    def test_top_level(self):
        assert phase_of("det-sqrt/step1/wave0/r1") == "det-sqrt"

    def test_unlabelled(self):
        assert phase_of("") == "(unlabelled)"


class TestBreakdown:
    def _run(self):
        instance = AllToAllInstance.random(16, width=1, seed=1)
        net = CongestedClique(16, bandwidth=16,
                              adversary=AdaptiveAdversary(1 / 16, seed=2))
        DetSqrtAllToAll().run(instance, net)
        return net

    def test_phases_cover_all_rounds(self):
        net = self._run()
        phases = phase_breakdown(net.history)
        assert sum(p.rounds for p in phases.values()) == net.rounds_used

    def test_corruption_totals_match(self):
        net = self._run()
        phases = phase_breakdown(net.history)
        assert sum(p.corrupted_entries for p in phases.values()) == \
            net.entries_corrupted

    def test_bit_totals_match(self):
        net = self._run()
        phases = phase_breakdown(net.history)
        assert sum(p.total_bits for p in phases.values()) == net.bits_sent
        n = net.n
        assert all(0 <= outcome.bits <= outcome.width * n * (n - 1)
                   for outcome in net.history)

    def test_format_contains_total(self):
        net = self._run()
        text = format_breakdown(net)
        assert "TOTAL" in text
        assert str(net.rounds_used) in text

    def test_corruption_rate_bounds(self):
        net = self._run()
        rate = corruption_rate(net.history, net.n)
        assert 0 < rate < 1

    def test_corruption_rate_empty(self):
        assert corruption_rate([], 8) == 0.0

    def test_mean_width(self):
        net = self._run()
        for stats in phase_breakdown(net.history).values():
            assert stats.mean_width > 0
