"""The vmap backend must write bit-identical store rows to serial/process.

This is the acceptance contract of the trial-batched execution engine: for
any campaign, ``backend="vmap"`` produces exactly the rows the serial
per-trial loop produces — same hashes, same outcome fields, same
unsupported/error verdicts — differing only in the wall-clock fields.
"""

import json

import pytest

from repro.experiments import TrialStore, free_grid, run_campaign
from repro.experiments.runner import STATUS_OK, STATUS_UNSUPPORTED

#: fields that legitimately differ between executions of the same trial
WALL_CLOCK_FIELDS = ("wall_seconds", "recorded_unix")


def digest(result):
    rows = []
    for row in result.rows():
        row = dict(row)
        for field in WALL_CLOCK_FIELDS:
            row.pop(field, None)
        rows.append(row)
    return json.dumps(rows, sort_keys=True)


def run_backends(spec, backends=("serial", "vmap")):
    digests = {}
    for backend in backends:
        result = run_campaign(spec, store=TrialStore(None), backend=backend,
                              jobs=2 if backend == "process" else 1)
        digests[backend] = (digest(result), result)
    return digests


class TestBackendParity:
    def test_fault_free_cells_batch_bit_identically(self):
        spec = free_grid(name="parity-ff",
                         protocols=("det-sqrt", "det-logn"),
                         adversaries=("null",), ns=(16,), alphas=(0.0,),
                         widths=(4,), bandwidths=(8,), replicates=3)
        digests = run_backends(spec, backends=("serial", "vmap", "process"))
        assert digests["serial"][0] == digests["vmap"][0]
        assert digests["serial"][0] == digests["process"][0]
        rows = digests["vmap"][1].rows()
        assert all(r["status"] == STATUS_OK for r in rows)

    def test_adversarial_cells_native_and_fallback_wrapper(self):
        # "nonadaptive" exercises the batched-mask fast path,
        # "adaptive" the generic per-trial fallback wrapper
        spec = free_grid(name="parity-adv", protocols=("det-sqrt",),
                         adversaries=("nonadaptive", "adaptive"), ns=(16,),
                         alphas=(1 / 16,), widths=(4,), bandwidths=(8,),
                         replicates=2)
        digests = run_backends(spec)
        assert digests["serial"][0] == digests["vmap"][0]
        rows = digests["vmap"][1].rows()
        assert all(r["status"] == STATUS_OK for r in rows)
        # the adversary actually bit: at least one trial saw corruption
        assert any(r["entries_corrupted"] > 0 for r in rows)

    def test_unsupported_configurations_match_serial_verdicts(self):
        # alpha far outside the proof regime at n=16: every trial must
        # come back as the exact serial ``unsupported`` row via the
        # serial fallback, not crash the batch
        spec = free_grid(name="parity-unsupported", protocols=("det-sqrt",),
                         adversaries=("nonadaptive",), ns=(16,),
                         alphas=(0.2,), widths=(4,), bandwidths=(8,),
                         replicates=2)
        digests = run_backends(spec)
        assert digests["serial"][0] == digests["vmap"][0]
        rows = digests["vmap"][1].rows()
        assert all(r["status"] == STATUS_UNSUPPORTED for r in rows)

    def test_adaptive_protocol_batches_natively(self):
        # the adaptive compiler used to be the one protocol without a
        # batched port; it now batches natively, so no trial may have
        # taken the serial-fallback path
        spec = free_grid(name="parity-adaptive-proto",
                         protocols=("adaptive",), adversaries=("null",),
                         ns=(16,), alphas=(0.0,), widths=(4,),
                         bandwidths=(8,), replicates=2)
        digests = run_backends(spec)
        assert digests["serial"][0] == digests["vmap"][0]
        rows = digests["vmap"][1].rows()
        assert not any("fallback" in r for r in rows)

    def test_unknown_backend_rejected(self):
        spec = free_grid(name="parity-bad", ns=(16,), alphas=(0.0,),
                         replicates=1)
        with pytest.raises(ValueError, match="unknown backend"):
            run_campaign(spec, store=TrialStore(None), backend="gpu")


class TestHeaderDedup:
    def test_identical_resume_appends_no_second_header(self, tmp_path):
        path = str(tmp_path / "rows.jsonl")
        spec = free_grid(name="dedup", protocols=("det-sqrt",),
                         adversaries=("null",), ns=(16,), alphas=(0.0,),
                         widths=(1,), bandwidths=(8,), replicates=2)
        run_campaign(spec, store=path, resume=True)
        run_campaign(spec, store=path, resume=True)

        def count_headers(p):
            with open(p, encoding="utf-8") as fh:
                return sum(1 for line in fh
                           if json.loads(line).get("kind") == "campaign")

        assert count_headers(path) == 1
        # a *different* spec under the same name legitimately re-records
        run_campaign(spec.with_overrides(replicates=3), store=path,
                     resume=True)
        assert count_headers(path) == 2
