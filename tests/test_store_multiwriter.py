"""Concurrent-writer safety of the TrialStore append path.

The sharded scheduler's correctness rests on one property of the store:
an append is a single ``os.write`` to an ``O_APPEND`` descriptor, so any
number of processes appending to the same JSONL file can only ever
produce whole lines — never interleaved or torn ones.  This is the
property test: hammer one store file from several processes at once and
assert every line parses, every row is intact, and nothing was lost.
"""

import json
import os
import subprocess
import sys

from repro.experiments.store import TrialStore, iter_store_rows

SRC = os.path.join(os.path.dirname(__file__), "..", "src")

WRITER = """
import json, os, sys
sys.path.insert(0, {src!r})
from repro.experiments.store import TrialStore
writer_id, rows, path = int(sys.argv[1]), int(sys.argv[2]), sys.argv[3]
with TrialStore(path) as store:
    for i in range(rows):
        store.append({{
            "hash": f"w{{writer_id}}-{{i:04d}}",
            "trial": {{"writer": writer_id, "i": i}},
            "status": "ok",
            # bulk payload makes a torn write far more likely if the
            # single-os.write guarantee were ever broken
            "payload": "x" * 512,
        }})
""".format(src=os.path.abspath(SRC))


def hammer(path, writers=4, rows=200):
    procs = [subprocess.Popen([sys.executable, "-c", WRITER,
                               str(w), str(rows), path])
             for w in range(writers)]
    for proc in procs:
        assert proc.wait() == 0
    return writers, rows


class TestMultiWriterStore:
    def test_concurrent_appends_never_tear_or_interleave(self, tmp_path):
        path = str(tmp_path / "store.jsonl")
        writers, rows = hammer(path)
        with open(path, "rb") as fh:
            raw_lines = fh.read().split(b"\n")
        assert raw_lines[-1] == b""  # file ends on a complete line
        parsed = [json.loads(line) for line in raw_lines[:-1]]
        assert len(parsed) == writers * rows  # nothing lost, nothing merged
        for row in parsed:
            # an interleaved write would corrupt the fixed-shape payload
            assert row["payload"] == "x" * 512
            assert row["hash"] == \
                f"w{row['trial']['writer']}-{row['trial']['i']:04d}"

    def test_every_writers_rows_all_land(self, tmp_path):
        path = str(tmp_path / "store.jsonl")
        writers, rows = hammer(path, writers=3, rows=150)
        seen = {r["hash"] for r in iter_store_rows(path)}
        expected = {f"w{w}-{i:04d}"
                    for w in range(writers) for i in range(rows)}
        assert seen == expected

    def test_store_reloads_clean_after_concurrent_writes(self, tmp_path):
        path = str(tmp_path / "store.jsonl")
        writers, rows = hammer(path, writers=3, rows=100)
        store = TrialStore(path)
        assert store.torn == 0
        assert len(store) == writers * rows
