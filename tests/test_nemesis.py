"""Unit tests for the protocol-aware nemesis adversary."""

import numpy as np
import pytest

from repro.adversary.base import RoundView
from repro.adversary.budget import fault_degrees, validate_fault_set
from repro.adversary.nemesis import FP23MatchingNemesis


def view(n, label, width=4):
    return RoundView(index=0, width=width,
                     intended=np.ones((n, n), dtype=np.int64),
                     history=[], label=label)


class TestFP23Nemesis:
    def test_budget_is_one_per_node(self):
        nemesis = FP23MatchingNemesis()
        nemesis.begin_protocol(64)
        assert nemesis.alpha == pytest.approx(1 / 64)
        assert nemesis.budget == 1

    @pytest.mark.parametrize("label", [
        "fp23/direct", "fp23/hop2-0", "fp23/hop2-3", "fp23/hop2-4[chunk1]",
    ])
    def test_fault_sets_are_matchings(self, label):
        nemesis = FP23MatchingNemesis()
        nemesis.begin_protocol(64)
        mask = nemesis.select_edges(view(64, label))
        validate_fault_set(mask, 64, nemesis.alpha)
        assert fault_degrees(mask).max() <= 1
        assert mask.any()

    def test_silent_on_hop1(self):
        """Corrupting both hops would cancel the flip; the nemesis only
        touches the final hop."""
        nemesis = FP23MatchingNemesis()
        nemesis.begin_protocol(64)
        mask = nemesis.select_edges(view(64, "fp23/hop1-2"))
        assert not mask.any()

    def test_silent_on_unrelated_rounds(self):
        nemesis = FP23MatchingNemesis()
        nemesis.begin_protocol(64)
        mask = nemesis.select_edges(view(64, "det-sqrt/step1"))
        assert not mask.any()

    def test_direct_round_hits_victims(self):
        nemesis = FP23MatchingNemesis()
        nemesis.begin_protocol(64)
        mask = nemesis.select_edges(view(64, "fp23/direct"))
        hits = sum(mask[u, v] for u, v in nemesis.victim_pairs())
        assert hits == len(nemesis.victim_pairs())

    def test_mobility(self):
        """Different rounds corrupt different edge sets — the nemesis is a
        genuinely mobile adversary."""
        nemesis = FP23MatchingNemesis()
        nemesis.begin_protocol(64)
        a = nemesis.select_edges(view(64, "fp23/hop2-0"))
        b = nemesis.select_edges(view(64, "fp23/hop2-1"))
        assert not np.array_equal(a, b)
