"""Unit tests for the bound calculators and failure models."""

import math

import pytest

from repro.analysis.bounds import (
    RoutingFeasibility,
    adaptive_crossover_n,
    bounded_degree_fault_budget,
    classical_fault_budget,
    det_logn_round_prediction,
    det_sqrt_round_prediction,
    fault_amplification,
    kmrs_query_complexity,
    table1_alpha,
)
from repro.analysis.failure_model import (
    AdaptiveRunModel,
    LineModel,
    SketchModel,
    binomial_tail,
    exposure_per_query,
    poisson_tail,
)


class TestFaultBudgets:
    def test_classical_linear(self):
        assert classical_fault_budget(1000) == 1000

    def test_bounded_degree_quadratic(self):
        # alpha n^2 / 2 shape
        assert bounded_degree_fault_budget(1000, 0.1) == 100 * 1000 // 2

    def test_amplification_grows_with_n(self):
        small = fault_amplification(100, 0.1)
        large = fault_amplification(10_000, 0.1)
        assert large > small * 50  # Θ(alpha n) amplification

    def test_amplification_is_alpha_n_over_two(self):
        assert fault_amplification(1000, 0.1) == pytest.approx(50.0)


class TestRoutingFeasibility:
    def test_feasible_case(self):
        feasibility = RoutingFeasibility(n=128, alpha=1 / 64,
                                         codeword_bits=64, overlap=0.0,
                                         code_distance=0.25)
        assert feasibility.adversary_fraction == pytest.approx(4 / 64)
        assert feasibility.feasible

    def test_infeasible_case(self):
        feasibility = RoutingFeasibility(n=128, alpha=1 / 8,
                                         codeword_bits=64, overlap=0.1,
                                         code_distance=0.25)
        assert not feasibility.feasible

    def test_max_alpha_consistency(self):
        feasibility = RoutingFeasibility(n=128, alpha=0.0, codeword_bits=64,
                                         overlap=0.02, code_distance=0.25)
        boundary = feasibility.max_alpha()
        just_under = RoutingFeasibility(n=128, alpha=boundary * 0.9,
                                        codeword_bits=64, overlap=0.02,
                                        code_distance=0.25)
        assert just_under.feasible


class TestTable1Scaling:
    def test_constant_families(self):
        assert table1_alpha("det-logn", 100) == table1_alpha("det-logn", 10_000)

    def test_sqrt_family(self):
        assert table1_alpha("det-sqrt", 400) == pytest.approx(1 / 20)

    def test_adaptive_is_subpolynomial(self):
        """alpha = exp(-sqrt(log n log log n)) shrinks slower than any
        1/n^eps — the paper's n^{2-o(1)} total-fault claim.  At finite n we
        check eps = 1/2 directly and that alpha * n^eps is increasing (the
        o(1) exponent keeps falling)."""
        n = 2 ** 40
        assert table1_alpha("adaptive", n) > n ** (-0.5)
        growth = [table1_alpha("adaptive", 2 ** e) * (2 ** e) ** 0.5
                  for e in (20, 30, 40)]
        assert growth[0] < growth[1] < growth[2]

    def test_adaptive_matches_kmrs(self):
        n = 2 ** 20
        assert table1_alpha("adaptive", n) == \
            pytest.approx(1 / kmrs_query_complexity(n))

    def test_unknown_family(self):
        with pytest.raises(ValueError):
            table1_alpha("nope", 100)


class TestRoundPredictions:
    def test_det_logn(self):
        assert det_logn_round_prediction(64) == 12
        assert det_logn_round_prediction(256) == 16

    def test_det_sqrt_constant(self):
        assert det_sqrt_round_prediction() == 4

    def test_crossover_monotone_in_sketch_size(self):
        alpha_of_n = lambda n: table1_alpha("adaptive", n)
        small = adaptive_crossover_n(100, alpha_of_n)
        large = adaptive_crossover_n(10_000, alpha_of_n)
        assert large >= small


class TestFailureModels:
    def test_poisson_tail_basics(self):
        assert poisson_tail(0.0, 3) == 0.0
        assert poisson_tail(1.0, 0) == pytest.approx(1 - math.exp(-1))

    def test_binomial_tail_exact(self):
        # P(Bin(4, 0.5) > 1) = 11/16
        assert binomial_tail(4, 0.5, 1) == pytest.approx(11 / 16)
        assert binomial_tail(4, 0.0, 0) == 0.0
        assert binomial_tail(4, 1.0, 3) == 1.0

    def test_line_model(self):
        line = LineModel(queries=30, margin=8, per_query=0.08)
        assert 0 < line.failure_probability < 0.05

    def test_sketch_model_amplifies_lines(self):
        line = LineModel(queries=30, margin=8, per_query=0.08)
        sketch = SketchModel(lines=98, line=line)
        assert sketch.failure_probability > line.failure_probability
        assert sketch.failure_probability <= 98 * line.failure_probability

    def test_run_model_expectations(self):
        line = LineModel(queries=30, margin=8, per_query=0.08)
        sketch = SketchModel(lines=98, line=line)
        run = AdaptiveRunModel(n=64, num_parts=2, sketch=sketch)
        assert run.expected_failed_sketches == pytest.approx(
            128 * sketch.failure_probability)

    def test_exposure(self):
        assert exposure_per_query(0.03125) == pytest.approx(0.078125)
        assert exposure_per_query(1.0) == 1.0

    def test_model_predicts_measured_regime(self):
        """Calibration check against the measured adaptive run at n=64,
        alpha=1/32 (EXPERIMENTS.md): ~10-30 failed sketches of 128."""
        per_query = exposure_per_query(1 / 32)
        line = LineModel(queries=30, margin=8, per_query=per_query)
        sketch = SketchModel(lines=98, line=line)
        run = AdaptiveRunModel(n=64, num_parts=2, sketch=sketch)
        assert 0.5 <= run.expected_failed_sketches <= 80
