"""Unit tests for GF(2^m) arithmetic."""

import numpy as np
import pytest

from repro.fields.gf2m import GF2m


@pytest.fixture(params=[4, 8])
def field(request):
    return GF2m(request.param)


class TestBasics:
    def test_rejects_unsupported_degree(self):
        with pytest.raises(ValueError):
            GF2m(40)

    def test_add_is_xor(self, field):
        assert int(field.add(0b1010 % field.order, 0b0110 % field.order)) == \
            (0b1010 % field.order) ^ (0b0110 % field.order)

    def test_mul_identity(self, field):
        values = np.arange(field.order)
        assert np.array_equal(field.mul(values, 1), values)

    def test_mul_zero(self, field):
        values = np.arange(field.order)
        assert not field.mul(values, 0).any()

    def test_mul_commutative(self, field):
        rng = np.random.default_rng(2)
        a = rng.integers(0, field.order, 50)
        b = rng.integers(0, field.order, 50)
        assert np.array_equal(field.mul(a, b), field.mul(b, a))

    def test_inverse(self, field):
        values = np.arange(1, field.order)
        assert np.all(field.mul(values, field.inv(values)) == 1)

    def test_inv_zero_raises(self, field):
        with pytest.raises(ZeroDivisionError):
            field.inv(0)

    def test_exp_log_tables_consistent(self, field):
        # alpha^i enumerates all nonzero elements
        seen = {field.pow_alpha(i) for i in range(field.order - 1)}
        assert seen == set(range(1, field.order))

    def test_pow(self, field):
        a = 3
        acc = 1
        for e in range(6):
            assert field.pow(a, e) == acc
            acc = int(field.mul(acc, a))

    def test_pow_zero_base(self, field):
        assert field.pow(0, 0) == 1
        assert field.pow(0, 5) == 0

    def test_distributive(self, field):
        rng = np.random.default_rng(7)
        a, b, c = (int(x) for x in rng.integers(0, field.order, 3))
        left = field.mul(a, field.add(b, c))
        right = field.add(field.mul(a, b), field.mul(a, c))
        assert int(left) == int(right)


class TestPolynomials:
    def test_poly_from_roots_has_roots(self, field):
        roots = [1, 2, 5]
        poly = field.poly_from_roots(roots)
        for r in roots:
            assert int(field.poly_eval(poly, r)) == 0

    def test_poly_mul_degree(self, field):
        a = np.array([1, 1], dtype=np.int64)
        product = field.poly_mul(a, a)
        # (x + 1)^2 = x^2 + 1 in characteristic 2
        assert np.array_equal(product, [1, 0, 1])

    def test_poly_mod_by_linear(self, field):
        # f mod (x - r) = f(r)
        rng = np.random.default_rng(1)
        coeffs = rng.integers(0, field.order, 5)
        r = 3
        remainder = field.poly_mod(coeffs, np.array([r, 1], dtype=np.int64))
        assert int(remainder[0]) == int(field.poly_eval(coeffs, r))

    def test_poly_deriv_char2(self, field):
        # d/dx (x^3 + x^2 + x + 1) = 3x^2 + 2x + 1 = x^2 + 1 in char 2
        deriv = field.poly_deriv(np.array([1, 1, 1, 1], dtype=np.int64))
        assert np.array_equal(deriv, [1, 0, 1])

    def test_matmul_matches_scalar(self, field):
        rng = np.random.default_rng(4)
        A = rng.integers(0, field.order, (3, 4))
        B = rng.integers(0, field.order, (4, 2))
        out = field.matmul(A, B)
        for i in range(3):
            for j in range(2):
                acc = 0
                for k in range(4):
                    acc ^= int(field.mul(int(A[i, k]), int(B[k, j])))
                assert acc == int(out[i, j])
