"""`_grouped_greedy` must be placement-for-placement identical to the serial
`SuperMessageRouter._schedule_blocks` greedy.

The batched router's grouped fast path schedules whole message *runs* with
scalar bit tricks instead of per-chunk scans; the parity contract is that
every chunk lands in exactly the (batch, block) the serial scheduler gives
it — that is what makes grouped batched routing bit-identical to serial
trial loops.  This fuzz pins the contract over random single-target
workloads, including the run-cache and first_open edge cases.
"""

import numpy as np
import pytest

from repro.core.batched_routing import _grouped_greedy
from repro.core.routing import SuperMessageRouter, _Chunk


def reference_schedule(srcs, tgts, counts, num_blocks):
    """Run the serial scheduler on the equivalent chunk list and read the
    per-chunk (batch, block) placements back in message order."""
    chunks = []
    for m, (src, tgt, count) in enumerate(zip(srcs, tgts, counts)):
        for index in range(count):
            chunks.append(_Chunk(source=int(src), slot=m, index=index,
                                 bits=np.ones(1, dtype=np.uint8),
                                 targets=(int(tgt),)))
    batches = SuperMessageRouter._schedule_blocks(chunks, num_blocks)
    placement = {}
    for batch_index, batch in enumerate(batches):
        for chunk, block in batch:
            placement[id(chunk)] = (batch_index, block)
    batch_arr = np.array([placement[id(c)][0] for c in chunks],
                         dtype=np.int64)
    block_arr = np.array([placement[id(c)][1] for c in chunks],
                         dtype=np.int64)
    return batch_arr, block_arr, len(batches)


@pytest.mark.parametrize("seed", range(20))
def test_grouped_greedy_matches_serial_scheduler(seed):
    rng = np.random.default_rng(seed)
    nodes = int(rng.integers(4, 24))
    num_messages = int(rng.integers(1, 60))
    num_blocks = int(rng.integers(1, 9))
    srcs = rng.integers(0, nodes, size=num_messages)
    tgts = rng.integers(0, nodes, size=num_messages)
    counts = rng.integers(1, 6 * num_blocks, size=num_messages)
    got_batch, got_block, got_batches = _grouped_greedy(
        srcs, tgts, counts, num_blocks)
    want_batch, want_block, want_batches = reference_schedule(
        srcs, tgts, counts, num_blocks)
    np.testing.assert_array_equal(got_batch, want_batch)
    np.testing.assert_array_equal(got_block, want_block)
    assert got_batches == want_batches


def test_repeated_key_runs_share_batches():
    # consecutive chunks of one (source, target) run exercise the
    # run-cache (prev_free) path on both schedulers
    srcs = np.array([0, 0, 0, 1, 0], dtype=np.int64)
    tgts = np.array([2, 2, 2, 2, 2], dtype=np.int64)
    counts = np.array([5, 3, 7, 2, 4], dtype=np.int64)
    got = _grouped_greedy(srcs, tgts, counts, 4)
    want = reference_schedule(srcs, tgts, counts, 4)
    np.testing.assert_array_equal(got[0], want[0])
    np.testing.assert_array_equal(got[1], want[1])
    assert got[2] == want[2]


def test_empty_schedule():
    empty = np.zeros(0, dtype=np.int64)
    batch, block, num_batches = _grouped_greedy(empty, empty, empty, 4)
    assert len(batch) == 0 and len(block) == 0 and num_batches == 0
