"""Hypothesis property tests on the router's structural invariants."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.adversary import NullAdversary
from repro.cliquesim import CongestedClique
from repro.core.routing import SuperMessage, SuperMessageRouter


def build_router(n=32, bandwidth=8):
    net = CongestedClique(n, bandwidth=bandwidth, adversary=NullAdversary())
    return SuperMessageRouter(net), net


@st.composite
def routing_instances(draw):
    """Random well-formed instances: per-node slot counts <= 3, message
    lengths 1..40, random target sets of 1..3 nodes."""
    n = 32
    rng_seed = draw(st.integers(0, 2**31 - 1))
    rng = np.random.default_rng(rng_seed)
    messages = []
    num_sources = draw(st.integers(1, 8))
    sources = rng.choice(n, num_sources, replace=False)
    for source in sources:
        for slot in range(int(rng.integers(1, 4))):
            length = int(rng.integers(1, 41))
            bits = rng.integers(0, 2, length).astype(np.uint8)
            num_targets = int(rng.integers(1, 4))
            targets = [int(t) for t in rng.choice(n, num_targets,
                                                  replace=False)]
            messages.append(SuperMessage.make(int(source), slot, bits,
                                              targets))
    return messages


class TestRouterProperties:
    @given(routing_instances())
    @settings(max_examples=15, deadline=None)
    def test_exact_delivery_fault_free(self, messages):
        router, _ = build_router()
        result = router.route(messages)
        for msg in messages:
            expected = np.array(msg.bits, dtype=np.uint8)
            for target in msg.targets:
                assert np.array_equal(result.outputs[target][msg.key],
                                      expected)

    @given(routing_instances())
    @settings(max_examples=10, deadline=None)
    def test_round_parity(self, messages):
        """Rounds always come in (round 1, round 2) pairs per wave."""
        router, net = build_router()
        result = router.route(messages)
        assert result.rounds % 2 == 0
        assert result.rounds == net.rounds_used

    @given(routing_instances())
    @settings(max_examples=10, deadline=None)
    def test_outputs_only_at_targets(self, messages):
        router, _ = build_router()
        result = router.route(messages)
        targeted = {(t, msg.key) for msg in messages for t in msg.targets}
        appearing = {(t, key) for t, per_node in result.outputs.items()
                     for key in per_node}
        assert appearing == targeted

    def test_scheduler_never_double_books(self):
        """Within a batch no (source, block) or (target, block) repeats —
        the bandwidth-1 guarantee of Section 4.2's load rules."""
        rng = np.random.default_rng(7)
        messages = [
            SuperMessage.make(u, slot, rng.integers(0, 2, 8).astype(np.uint8),
                              [(u * 3 + slot + 1) % 32])
            for u in range(32) for slot in range(3)
        ]
        router, _ = build_router()
        length, code = router.profile.select_routing_code(32, 0.0)
        chunks = router._split_into_chunks(messages, code.k)
        batches = router._schedule_blocks(chunks, 32 // length)
        for batch in batches:
            seen_source = set()
            seen_target = set()
            for chunk, block in batch:
                assert (chunk.source, block) not in seen_source
                seen_source.add((chunk.source, block))
                for t in chunk.targets:
                    assert (t, block) not in seen_target
                    seen_target.add((t, block))
