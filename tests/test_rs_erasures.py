"""Errors-and-erasures Reed–Solomon decoding.

The transport marks dropped entries, so the decoder knows *where* some
symbols are missing: each erasure costs one unit of distance budget
instead of two (``2e + f <= d - 1``), doubling the radius for pure drops
— ``f <= d - 1`` erasures decode where only ``floor((d-1)/2)`` unknown
errors would.  Tested here: the scalar pipeline, the batched kernel, the
parity between them, the binary/concatenated adapters, and that the
f = 0 path stays bit-identical to the legacy decoder.
"""

import numpy as np
import pytest

from repro.fields.gf2m import GF2m
from repro.coding.justesen import make_justesen_code
from repro.coding.reed_solomon import (DecodingFailure, ReedSolomonBinaryCode,
                                       ReedSolomonCodec)
from repro.utils.rng import make_rng


@pytest.fixture(scope="module")
def codec():
    return ReedSolomonCodec(GF2m(8), n=60, k=40)


def _erase(rng, word, f, n):
    mask = np.zeros(n, dtype=bool)
    positions = rng.choice(n, f, replace=False)
    mask[positions] = True
    noisy = word.copy()
    noisy[positions] = rng.integers(0, 256, f)
    return noisy, mask


class TestScalarErasures:
    def test_pure_erasures_up_to_d_minus_1(self, codec):
        """f <= d - 1 pure erasures decode — double the plain-error radius."""
        rng = make_rng(1)
        d = codec.n - codec.k + 1
        word = codec.encode_many(rng.integers(0, 256,
                                              size=(1, codec.k)))[0]
        for f in (1, codec.t, codec.t + 1, d - 1):
            noisy, mask = _erase(rng, word, f, codec.n)
            assert np.array_equal(codec.correct(noisy, erasures=mask), word)

    def test_mixed_errors_and_erasures_radius(self, codec):
        """Any (e, f) with 2e + f <= d - 1 decodes."""
        rng = make_rng(2)
        d = codec.n - codec.k + 1
        word = codec.encode_many(rng.integers(0, 256,
                                              size=(1, codec.k)))[0]
        for f in (0, 3, 8, d - 3):
            e = (d - 1 - f) // 2
            positions = rng.choice(codec.n, f + e, replace=False)
            noisy = word.copy()
            mask = np.zeros(codec.n, dtype=bool)
            mask[positions[:f]] = True
            noisy[positions[:f]] = rng.integers(0, 256, f)
            noisy[positions[f:]] ^= rng.integers(1, 256, e)
            assert np.array_equal(codec.correct(noisy, erasures=mask), word)

    def test_too_many_erasures_fails(self, codec):
        rng = make_rng(3)
        d = codec.n - codec.k + 1
        word = codec.encode_many(rng.integers(0, 256,
                                              size=(1, codec.k)))[0]
        noisy, mask = _erase(rng, word, d, codec.n)  # f = d > d - 1
        with pytest.raises(DecodingFailure):
            codec.correct(noisy, erasures=mask)

    def test_beyond_combined_radius_fails(self, codec):
        """f erasures plus e errors with 2e + f > d - 1 must not silently
        mis-decode: either a failure or (coincidentally) the right word."""
        rng = make_rng(4)
        d = codec.n - codec.k + 1
        word = codec.encode_many(rng.integers(0, 256,
                                              size=(1, codec.k)))[0]
        f = d - 2
        e = 3  # 2*3 + (d-2) = d + 4 > d - 1
        positions = rng.choice(codec.n, f + e, replace=False)
        noisy = word.copy()
        mask = np.zeros(codec.n, dtype=bool)
        mask[positions[:f]] = True
        noisy[positions[:f]] = rng.integers(0, 256, f)
        noisy[positions[f:]] ^= rng.integers(1, 256, e)
        try:
            got = codec.correct(noisy, erasures=mask)
        except DecodingFailure:
            return
        # the re-syndrome check only guarantees *a* codeword; reaching a
        # different one than ``word`` is legitimate beyond the radius
        assert not np.any(codec.syndromes_many(got[None, :]))

    def test_empty_mask_is_legacy_path(self, codec):
        rng = make_rng(5)
        word = codec.encode_many(rng.integers(0, 256,
                                              size=(1, codec.k)))[0]
        noisy = word.copy()
        positions = rng.choice(codec.n, codec.t, replace=False)
        noisy[positions] ^= rng.integers(1, 256, codec.t)
        mask = np.zeros(codec.n, dtype=bool)
        assert np.array_equal(codec.correct(noisy, erasures=mask),
                              codec.correct(noisy))


class TestBatchedErasures:
    def test_batched_matches_scalar(self, codec):
        """The batched kernel and the (independently implemented) scalar
        pipeline agree on corrected words and failure flags."""
        from repro.perf.reference import rs_correct_many_erasures_scalar
        rng = make_rng(6)
        d = codec.n - codec.k + 1
        count = 64
        words = codec.encode_many(rng.integers(0, 256,
                                               size=(count, codec.k)))
        noisy = words.copy()
        masks = np.zeros((count, codec.n), dtype=bool)
        for i in range(count):
            if i % 5 == 4:
                f, e = int(rng.integers(d, codec.n)), 0  # beyond radius
            else:
                f = int(rng.integers(0, d))
                e = int(rng.integers(0, (d - 1 - f) // 2 + 1))
            positions = rng.choice(codec.n, f + e, replace=False)
            masks[i, positions[:f]] = True
            noisy[i, positions[:f]] = rng.integers(0, 256, f)
            if e:
                noisy[i, positions[f:]] ^= rng.integers(1, 256, e)
        ref = rs_correct_many_erasures_scalar(codec, noisy, masks)
        got = codec.correct_many(noisy, erasures=masks)
        assert np.array_equal(ref[0], got[0])
        assert np.array_equal(ref[1], got[1])
        assert got[1].any() and not got[1].all()

    def test_zero_mask_rows_match_legacy_kernel(self, codec):
        """A batch whose masks are all empty must be bit-identical to the
        erasure-free kernel — the vmap backend routes mixed batches through
        the erasure path whenever any one trial dropped anything."""
        rng = make_rng(7)
        count = 32
        words = codec.encode_many(rng.integers(0, 256,
                                               size=(count, codec.k)))
        noisy = words.copy()
        for i in range(count):
            e = int(rng.integers(0, 2 * codec.t))
            if e:
                positions = rng.choice(codec.n, e, replace=False)
                noisy[i, positions] ^= rng.integers(1, 256, e)
        legacy = codec.correct_many(noisy)
        masks = np.zeros((count, codec.n), dtype=bool)
        gated = codec.correct_many(noisy, erasures=masks)
        assert np.array_equal(legacy[0], gated[0])
        assert np.array_equal(legacy[1], gated[1])

    def test_decode_many_flagged_passthrough(self, codec):
        rng = make_rng(8)
        words = codec.encode_many(rng.integers(0, 256, size=(8, codec.k)))
        noisy = words.copy()
        masks = np.zeros((8, codec.n), dtype=bool)
        masks[:, :codec.n - codec.k] = True  # f = d - 1 pure erasures
        noisy[masks] = 0
        decoded, failed = codec.decode_many_flagged(noisy, erasures=masks)
        assert not failed.any()
        assert np.array_equal(codec.encode_many(decoded), words)


class TestBinaryAndConcatenated:
    def test_binary_adapter_maps_bit_masks(self):
        code = ReedSolomonBinaryCode(ReedSolomonCodec(GF2m(4), n=12, k=6))
        assert code.supports_erasures
        rng = make_rng(9)
        msgs = rng.integers(0, 2, size=(16, code.k), dtype=np.uint8)
        words = code.encode_many(msgs)
        noisy = words.copy()
        m = code.codec.field.m
        masks = np.zeros_like(words, dtype=bool)
        d = code.codec.n - code.codec.k + 1
        for i in range(16):
            symbols = rng.choice(code.codec.n, d - 1, replace=False)
            for s in symbols:  # erase whole symbols' bit spans
                masks[i, s * m:(s + 1) * m] = True
                noisy[i, s * m:(s + 1) * m] = rng.integers(0, 2, m)
        decoded, failed = code.decode_many_flagged(noisy, erasures=masks)
        assert not failed.any()
        assert np.array_equal(decoded, msgs)

    def test_concatenated_recovers_whole_block_drops(self):
        """d_out - 1 fully-dropped inner blocks recover — the outer erasure
        radius — where blind decoding would cap at floor((d_out-1)/2)."""
        padded = make_justesen_code(250)
        assert padded.supports_erasures
        concat = padded.base
        inner_n = concat.inner.n
        outer_d = concat.outer.n - concat.outer.k + 1
        rng = make_rng(10)
        msgs = rng.integers(0, 2, size=(4, padded.k), dtype=np.uint8)
        words = padded.encode_many(msgs)
        noisy = words.copy()
        masks = np.zeros_like(words, dtype=bool)
        for i in range(4):
            blocks = rng.choice(concat.outer.n, outer_d - 1, replace=False)
            for b in blocks:
                masks[i, b * inner_n:(b + 1) * inner_n] = True
                noisy[i, b * inner_n:(b + 1) * inner_n] = \
                    rng.integers(0, 2, inner_n)
        decoded, failed = padded.decode_many_flagged(noisy, erasures=masks)
        assert not failed.any()
        assert np.array_equal(decoded, msgs)

    def test_erasures_unsupported_base_ignores_mask(self):
        """PaddedCode over an erasure-unaware base must not forward the
        kwarg (and must report supports_erasures accordingly)."""
        from repro.coding.justesen import PaddedCode
        from repro.coding.linear import extended_hamming_8_4

        class Unaware:
            # erasure-oblivious duck-typed code: no ``erasures`` kwarg at all
            def __init__(self):
                self._base = extended_hamming_8_4()
                self.n, self.k = self._base.n, self._base.k

            @property
            def relative_distance(self):
                return self._base.relative_distance

            def encode_many(self, messages):
                return self._base.encode_many(messages)

            def decode_many_flagged(self, received):
                return self._base.decode_many_flagged(received)

        padded = PaddedCode(Unaware(), 12)
        assert not padded.supports_erasures
        rng = make_rng(11)
        msgs = rng.integers(0, 2, size=(4, padded.k), dtype=np.uint8)
        words = padded.encode_many(msgs)
        masks = np.zeros_like(words, dtype=bool)
        masks[:, -1] = True  # would TypeError if forwarded to the base
        decoded, failed = padded.decode_many_flagged(words, erasures=masks)
        assert not failed.any()
        assert np.array_equal(decoded, msgs)
