"""Unit tests for the observability subsystem (repro.obs)."""

import io
import json

import numpy as np
import pytest

from repro.adversary.adaptive import AdaptiveAdversary
from repro.cliquesim.network import CongestedClique
from repro.core import AllToAllInstance, make_protocol
from repro.obs import metrics, tracing
from repro.obs.trend import (
    bench_trends,
    load_bench_rows,
    render_trends,
    sparkline,
)
from repro.obs.watch import read_rows, render, snapshot, watch


class TestMetrics:
    def test_disabled_is_noop(self):
        with metrics.use(on=False) as reg:
            metrics.count("x")
            metrics.observe("y", 3.0)
            with metrics.timed("z"):
                pass
            assert not reg
            assert metrics.snapshot() == {
                "counters": {}, "timers": {}, "histograms": {}}

    def test_disabled_timer_is_shared_noop(self):
        with metrics.use(on=False):
            a = metrics.timed("a")
            b = metrics.timed("b")
            assert a is b

    def test_counters_accumulate(self):
        with metrics.use():
            metrics.count("hits")
            metrics.count("hits", 4)
            assert metrics.snapshot()["counters"] == {"hits": 5}

    def test_timer_records_count_and_seconds(self):
        with metrics.use():
            for _ in range(3):
                with metrics.timed("loop"):
                    pass
            snap = metrics.snapshot()["timers"]["loop"]
            assert snap["count"] == 3
            assert snap["seconds"] >= 0

    def test_histogram_stats_and_log2_buckets(self):
        with metrics.use():
            for value in (1.0, 2.0, 5.0, 0.0):
                metrics.observe("sizes", value)
            h = metrics.snapshot()["histograms"]["sizes"]
            assert h["count"] == 4
            assert h["min"] == 0.0 and h["max"] == 5.0
            # 1.0 -> bucket 0, 2.0 -> 1, 5.0 -> 2, 0.0 -> -1
            assert h["log2_buckets"] == {"-1": 1, "0": 1, "1": 1, "2": 1}

    def test_use_restores_outer_state(self):
        outer_enabled = metrics.enabled()
        with metrics.use():
            metrics.count("inner")
        assert metrics.enabled() == outer_enabled
        if not outer_enabled:
            assert "inner" not in metrics.snapshot()["counters"]

    def test_snapshot_reset_after(self):
        with metrics.use():
            metrics.count("once")
            first = metrics.snapshot(reset_after=True)
            assert first["counters"] == {"once": 1}
            assert metrics.snapshot()["counters"] == {}

    def test_mid_span_disable_discards_timer(self):
        with metrics.use():
            timer = metrics.timed("gone")
            with timer:
                metrics.disable()
            metrics.enable()
            assert "gone" not in metrics.snapshot()["timers"]


class TestTracer:
    def test_meta_is_first_event(self):
        tracer = tracing.Tracer("t", n=8)
        head = tracer.events[0]
        assert head["kind"] == "meta"
        assert head["schema"] == tracing.SCHEMA_VERSION
        assert head["n"] == 8

    def test_span_nesting_depth(self):
        tracer = tracing.Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        spans = [e for e in tracer.events if e["kind"] == "span"]
        # inner closes first, at depth 1; outer closes last, at depth 0
        assert [(s["name"], s["depth"]) for s in spans] == \
            [("inner", 1), ("outer", 0)]
        assert all(s["t1"] >= s["t0"] for s in spans)

    def test_install_uninstall(self):
        assert tracing.active() is None
        tracer = tracing.Tracer()
        tracing.install(tracer)
        try:
            assert tracing.active() is tracer
            with pytest.raises(RuntimeError):
                tracing.install(tracing.Tracer())
        finally:
            tracing.uninstall()
        assert tracing.active() is None

    def test_maybe_span_noop_without_tracer(self):
        with tracing.maybe_span("nothing"):
            pass  # must not raise and must record nowhere

    def test_trace_context_installs_and_uninstalls(self):
        with tracing.trace("block") as tracer:
            assert tracing.active() is tracer
        assert tracing.active() is None

    def test_jsonl_roundtrip(self, tmp_path):
        tracer = tracing.Tracer("rt", n=4)
        tracer.round_event(index=0, label="p/r0", width=2, bits=24,
                           corrupted=1)
        path = str(tmp_path / "trace.jsonl")
        tracer.write_jsonl(path)
        rows = tracing.load_jsonl(path)
        assert rows == tracer.events

    def test_summarize_attribution(self):
        rows = [
            {"kind": "meta", "schema": 1},
            {"kind": "round", "t": 0.5, "label": "a/r0", "phase": "a",
             "width": 1, "bits": 10, "corrupted": 2},
            {"kind": "transport", "t": 0.75, "label": "b/x[bits0]",
             "phase": "b", "width": 4, "chunks": 2, "dropped": 3},
            {"kind": "round", "t": 1.0, "label": "a/r1", "phase": "a",
             "width": 1, "bits": 5, "corrupted": 0},
            {"kind": "span", "name": "s", "t0": 0.0, "t1": 1.0, "depth": 0},
        ]
        summary = tracing.summarize(rows)
        assert summary.rounds == 2
        assert summary.bits == 15
        assert summary.corrupted == 2
        assert summary.dropped == 3
        assert summary.dropped_by_label() == {"b/x[bits0]": 3}
        # gaps: a gets 0.5 (to r0) + 0.25 (0.75 -> 1.0); b gets 0.25
        assert summary.phases["a"].wall_seconds == pytest.approx(0.75)
        assert summary.phases["b"].wall_seconds == pytest.approx(0.25)
        assert summary.wall_seconds == pytest.approx(1.0)
        assert len(summary.spans) == 1
        assert "TOTAL" in tracing.render_summary(summary)


class TestTracedRuns:
    def _traced_run(self, protocol_name, n=16, alpha=1 / 16, seed=3,
                    **adversary_kwargs):
        instance = AllToAllInstance.random(n, width=1, seed=seed)
        adversary = AdaptiveAdversary(alpha, seed=seed + 1,
                                      **adversary_kwargs)
        net = CongestedClique(n, bandwidth=32, adversary=adversary)
        with tracing.trace("test", protocol=protocol_name, n=n) as tracer:
            make_protocol(protocol_name).run(instance, net, seed=seed + 2)
        return net, tracing.summarize(tracer.events)

    def test_round_totals_reconcile_with_engine(self):
        net, summary = self._traced_run("det-sqrt")
        assert summary.rounds == net.rounds_used
        assert summary.bits == net.bits_sent
        assert summary.corrupted == net.entries_corrupted

    def test_adaptive_trace_reconciles_and_has_spans(self):
        net, summary = self._traced_run("adaptive")
        assert summary.rounds == net.rounds_used
        assert summary.bits == net.bits_sent
        assert summary.corrupted == net.entries_corrupted
        names = {s["name"] for s in summary.spans}
        assert "adaptive/sketch-build" in names
        assert "adaptive/sketch-subtract" in names

    def test_dropped_entries_reconcile_with_diagnostics(self):
        instance = AllToAllInstance.random(16, width=1, seed=7)
        adversary = AdaptiveAdversary(1 / 16, seed=8, content_attack="drop")
        net = CongestedClique(16, bandwidth=32, adversary=adversary)
        protocol = make_protocol("adaptive")
        with tracing.trace("drops") as tracer:
            protocol.run(instance, net, seed=9)
        summary = tracing.summarize(tracer.events)
        by_label = summary.dropped_by_label()
        diag = protocol.diagnostics
        assert by_label.get("adaptive/scatter", 0) == \
            diag["dropped_scatter_entries"]
        assert by_label.get("adaptive/answers", 0) == \
            diag["dropped_answer_entries"]

    def test_metrics_counters_match_engine(self):
        with metrics.use():
            instance = AllToAllInstance.random(16, width=1, seed=11)
            net = CongestedClique(16, bandwidth=32,
                                  adversary=AdaptiveAdversary(1 / 16,
                                                              seed=12))
            make_protocol("det-sqrt").run(instance, net, seed=13)
            counters = metrics.snapshot()["counters"]
        assert counters["net.rounds"] == net.rounds_used
        assert counters["net.bits"] == net.bits_sent


def _write_jsonl(path, rows):
    with open(path, "w", encoding="utf-8") as fh:
        for row in rows:
            fh.write(json.dumps(row) + "\n")


def _campaign_row():
    return {"kind": "campaign", "hash": "campaign:t", "spec": {
        "name": "t", "grids": [{"protocols": ["det-sqrt"],
                                "adversaries": ["adaptive"],
                                "ns": [16], "alphas": [0.0, 0.0625],
                                "widths": [1], "bandwidths": [16]}],
        "replicates": 2, "base_seed": 0, "accuracy_bar": 1.0}}


def _trial_row(i, status="ok", stamp=None):
    return {"hash": f"h{i}", "status": status,
            "trial": {"protocol": "det-sqrt", "adversary": "adaptive",
                      "n": 16, "alpha": 0.0625, "replicate": i},
            "wall_seconds": 0.5,
            "recorded_unix": 100.0 + i if stamp is None else stamp}


class TestWatch:
    def test_snapshot_counts_and_rate(self, tmp_path):
        path = str(tmp_path / "store.jsonl")
        rows = [_campaign_row()] + [_trial_row(i) for i in range(3)]
        rows.append(_trial_row(3, status="error"))
        _write_jsonl(path, rows)
        state = snapshot(read_rows(path), path)
        assert state.campaign == "t"
        assert state.expected == 4  # 1 protocol x 2 alphas x 2 replicates
        assert state.done == 4 and state.ok == 3 and state.errors == 1
        assert state.finished
        # 4 stamps spanning 3 seconds -> 1 trial/s
        assert state.rate == pytest.approx(1.0)

    def test_snapshot_dedups_rerun_trials(self):
        rows = [_campaign_row(), _trial_row(0), _trial_row(0)]
        state = snapshot(rows)
        assert state.done == 1

    def test_render_mentions_progress(self):
        rows = [_campaign_row()] + [_trial_row(i) for i in range(2)]
        text = render(snapshot(rows))
        assert "2/4 trials" in text
        assert "ok 2" in text
        assert "det-sqrt" in text

    def test_watch_once(self, tmp_path):
        path = str(tmp_path / "store.jsonl")
        _write_jsonl(path, [_campaign_row(), _trial_row(0)])
        out = io.StringIO()
        assert watch(path, once=True, stream=out) == 0
        assert "1/4 trials" in out.getvalue()

    def test_watch_once_missing_store(self, tmp_path):
        out = io.StringIO()
        assert watch(str(tmp_path / "nope.jsonl"), once=True,
                     stream=out) == 1

    def test_torn_lines_skipped(self, tmp_path):
        path = str(tmp_path / "store.jsonl")
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(json.dumps(_trial_row(0)) + "\n")
            fh.write('{"hash": "torn", "stat')  # interrupted append
        assert len(read_rows(path)) == 1


def _bench_row(name, stamp, speedup=None, items=None):
    entry = {}
    if speedup is not None:
        entry["speedup"] = speedup
    if items is not None:
        entry["batched_items_per_sec"] = items
        entry["unit"] = "rows"
    return {"kind": "bench", "suite": "coding", "name": name,
            "mode": "smoke", "recorded_unix": stamp, "entry": entry}


class TestTrend:
    def test_series_sorted_by_time(self):
        rows = [_bench_row("k", 2.0, speedup=4.0),
                _bench_row("k", 1.0, speedup=8.0)]
        trend = bench_trends(rows)[0]
        assert trend.values == [8.0, 4.0]
        assert trend.first == 8.0 and trend.latest == 4.0

    def test_regression_flagging(self):
        rows = [_bench_row("k", 1.0, speedup=10.0),
                _bench_row("k", 2.0, speedup=4.0)]
        trend = bench_trends(rows)[0]
        assert trend.regressed(2.0)       # 4 < 10 / 2
        assert not trend.regressed(3.0)   # 4 >= 10 / 3
        text = render_trends([trend], factor=2.0)
        assert "REGRESSED" in text
        assert "1 regression" in text

    def test_trajectory_metric(self):
        rows = [_bench_row("e2e", 1.0, items=50.0)]
        trend = bench_trends(rows)[0]
        assert trend.metric == "rows/s"

    def test_load_filters_non_bench_rows(self, tmp_path):
        path = str(tmp_path / "bench.jsonl")
        _write_jsonl(path, [_bench_row("k", 1.0, speedup=2.0),
                            _trial_row(0)])
        assert len(load_bench_rows(path)) == 1

    def test_sparkline_shape(self):
        assert sparkline([]) == ""
        assert sparkline([1.0, 1.0]) == "▁▁"
        line = sparkline([float(i) for i in range(40)], width=12)
        assert len(line) == 12
        assert line[0] == "▁" and line[-1] == "█"

    def test_render_empty(self):
        assert "no bench rows" in render_trends([])
