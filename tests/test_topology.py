"""Unit tests for node-indexing helpers (segments, hypercube, partitions)."""

import numpy as np
import pytest

from repro.cliquesim.topology import (
    balanced_random_partition,
    consecutive_segments,
    flip,
    partition_members,
    prefix_class,
    sqrt_segments,
    suffix_class,
)


class TestSegments:
    def test_consecutive(self):
        segments = consecutive_segments(12, 4)
        assert len(segments) == 3
        assert np.array_equal(segments[1], [4, 5, 6, 7])

    def test_indivisible_raises(self):
        with pytest.raises(ValueError):
            consecutive_segments(10, 4)

    def test_sqrt_segments(self):
        segments = sqrt_segments(16)
        assert len(segments) == 4
        assert all(seg.size == 4 for seg in segments)

    def test_sqrt_requires_perfect_square(self):
        with pytest.raises(ValueError):
            sqrt_segments(12)


class TestFlip:
    def test_msb_first_indexing(self):
        # n = 8, ids are 3 bits; bit 0 is the most significant
        assert flip(0b000, 0, 1, 8) == 0b100
        assert flip(0b111, 2, 0, 8) == 0b110
        assert flip(0b101, 1, 1, 8) == 0b111

    def test_flip_identity(self):
        assert flip(5, 1, (5 >> 1) & 1, 8) == 5

    def test_requires_power_of_two(self):
        with pytest.raises(ValueError):
            flip(0, 0, 1, 12)

    def test_bit_out_of_range(self):
        with pytest.raises(IndexError):
            flip(0, 3, 1, 8)

    def test_involution(self):
        n = 16
        for v in range(n):
            for bit in range(4):
                partner = flip(v, bit, 1 - ((v >> (3 - bit)) & 1), n)
                back = flip(partner, bit, (v >> (3 - bit)) & 1, n)
                assert back == v


class TestPrefixSuffixClasses:
    def test_prefix_class_initial(self):
        assert np.array_equal(prefix_class(5, 1, 8), np.arange(8))

    def test_prefix_class_final(self):
        assert np.array_equal(prefix_class(5, 4, 8), [5])

    def test_suffix_class_initial(self):
        # S(u, 1): agree on all log n bits -> {u}
        assert np.array_equal(suffix_class(5, 1, 8), [5])

    def test_suffix_class_final(self):
        assert np.array_equal(suffix_class(5, 4, 8), np.arange(8))

    def test_lemma_6_2_intersection(self):
        # P(u, i) ∩ S(u, i) = {u} for all i (Section 6.1)
        n = 16
        for u in range(n):
            for i in range(1, 6):
                inter = np.intersect1d(prefix_class(u, i, n),
                                       suffix_class(u, i, n))
                assert np.array_equal(inter, [u])

    def test_sizes_multiply_to_n(self):
        n = 16
        for u in range(n):
            for i in range(1, 6):
                assert prefix_class(u, i, n).size * \
                    suffix_class(u, i, n).size == n


class TestBalancedRandomPartition:
    def test_exact_sizes(self):
        part_of = balanced_random_partition(64, 8, shared_seed=5)
        counts = np.bincount(part_of, minlength=8)
        assert np.all(counts == 8)

    def test_deterministic_from_seed(self):
        a = balanced_random_partition(64, 8, shared_seed=5)
        b = balanced_random_partition(64, 8, shared_seed=5)
        assert np.array_equal(a, b)

    def test_seed_matters(self):
        a = balanced_random_partition(64, 8, shared_seed=5)
        b = balanced_random_partition(64, 8, shared_seed=6)
        assert not np.array_equal(a, b)

    def test_indivisible_raises(self):
        with pytest.raises(ValueError):
            balanced_random_partition(10, 3, shared_seed=0)

    def test_members_sorted(self):
        part_of = balanced_random_partition(32, 4, shared_seed=9)
        for members in partition_members(part_of, 4):
            assert np.all(np.diff(members) > 0)

    def test_partition_is_actually_random(self):
        """Consecutive ids should not systematically share parts."""
        part_of = balanced_random_partition(256, 16, shared_seed=11)
        same_as_next = np.mean(part_of[:-1] == part_of[1:])
        assert same_as_next < 0.3
