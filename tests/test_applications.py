"""Unit tests for the applications built on AllToAllComm."""

import numpy as np
import pytest

from repro.adversary import AdaptiveAdversary, NullAdversary
from repro.baseline import NaiveAllToAll
from repro.core.applications import resilient_consensus, resilient_gossip_sum
from repro.core.det_logn import DetLogAllToAll
from repro.core.det_sqrt import DetSqrtAllToAll
from repro.utils.rng import make_rng


class TestConsensus:
    def test_fault_free_agreement(self):
        inputs = make_rng(1).integers(0, 2, size=16)
        report = resilient_consensus(inputs, DetSqrtAllToAll(),
                                     NullAdversary(), bandwidth=16)
        assert report.consensus_reached
        # majority, ties to smallest: recompute independently
        ones = int(inputs.sum())
        expected = 1 if ones > 16 - ones else 0
        assert int(report.decisions[0]) == expected

    def test_under_adversary(self):
        inputs = make_rng(2).integers(0, 2, size=64)
        report = resilient_consensus(inputs, DetLogAllToAll(),
                                     AdaptiveAdversary(1 / 32, seed=3),
                                     bandwidth=32)
        assert report.consensus_reached

    def test_unanimous_input_validity(self):
        inputs = np.ones(16, dtype=np.int64)
        report = resilient_consensus(inputs, DetSqrtAllToAll(),
                                     NullAdversary(), bandwidth=16)
        assert report.consensus_reached
        assert int(report.decisions[0]) == 1

    def test_naive_consensus_can_disagree(self):
        """With an unprotected transport and a near-split input, corrupted
        tallies can break agreement — the motivation for the compilers."""
        rng = make_rng(4)
        inputs = np.zeros(64, dtype=np.int64)
        inputs[:32] = 1  # exact split: every corruption matters
        report = resilient_consensus(inputs, NaiveAllToAll(),
                                     AdaptiveAdversary(1 / 8, seed=5),
                                     bandwidth=16)
        # not asserting failure (it is adversary-dependent), but the runs
        # must be well-formed either way
        assert report.decisions.shape == (64,)

    def test_multivalued(self):
        inputs = make_rng(6).integers(0, 8, size=16)
        report = resilient_consensus(inputs, DetSqrtAllToAll(),
                                     NullAdversary(), width=3, bandwidth=16)
        assert report.consensus_reached
        assert int(report.decisions[0]) in set(int(x) for x in inputs)


class TestGossipSum:
    def test_fault_free(self):
        values = make_rng(7).integers(0, 100, size=16)
        sums, rounds = resilient_gossip_sum(values, DetSqrtAllToAll(),
                                            NullAdversary(), modulus=1 << 10,
                                            bandwidth=16)
        assert np.all(sums == int(values.sum()) % (1 << 10))
        assert rounds > 0

    def test_under_adversary(self):
        values = make_rng(8).integers(0, 100, size=64)
        sums, _ = resilient_gossip_sum(values, DetSqrtAllToAll(),
                                       AdaptiveAdversary(1 / 64, seed=9),
                                       modulus=1 << 10, bandwidth=32)
        assert np.all(sums == int(values.sum()) % (1 << 10))
