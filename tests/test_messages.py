"""Unit tests for AllToAllComm instances, ids and verification."""

import numpy as np
import pytest

from repro.core.messages import AllToAllInstance, ProtocolReport, verify_beliefs
from repro.core.protocol import pack_block, unpack_block


class TestInstance:
    def test_random_shape_and_range(self):
        inst = AllToAllInstance.random(8, width=3, seed=1)
        assert inst.messages.shape == (8, 8)
        assert inst.messages.max() < 8

    def test_validation(self):
        with pytest.raises(ValueError):
            AllToAllInstance(n=4, width=1,
                             messages=np.full((4, 4), 2, dtype=np.int64))
        with pytest.raises(ValueError):
            AllToAllInstance(n=4, width=1,
                             messages=np.zeros((3, 3), dtype=np.int64))

    def test_message_id(self):
        inst = AllToAllInstance.random(8, seed=0)
        assert inst.message_id(3, 5) == 3 * 8 + 5

    def test_element_id_encodes_payload(self):
        inst = AllToAllInstance.random(8, width=2, seed=0)
        element = inst.element_id(1, 2)
        assert element >> 2 == 1 * 8 + 2
        assert element % 4 == inst.messages[1, 2]

    def test_element_universe(self):
        inst = AllToAllInstance.random(8, width=2, seed=0)
        assert inst.element_universe() == 8 * 8 * 4


class TestVerification:
    def test_counts_matches(self):
        inst = AllToAllInstance.random(8, seed=2)
        beliefs = inst.messages.copy()
        assert verify_beliefs(inst, beliefs) == 64
        beliefs[0, 0] ^= 1
        assert verify_beliefs(inst, beliefs) == 63

    def test_shape_mismatch(self):
        inst = AllToAllInstance.random(8, seed=2)
        with pytest.raises(ValueError):
            verify_beliefs(inst, np.zeros((4, 4), dtype=np.int64))

    def test_report_properties(self):
        report = ProtocolReport(protocol="x", n=8, alpha=0.1, rounds=3,
                                bits_sent=100, correct_entries=60,
                                total_entries=64,
                                entries_corrupted_in_transit=4)
        assert report.accuracy == pytest.approx(60 / 64)
        assert not report.perfect
        assert "x" in str(report)


class TestPacking:
    def test_round_trip(self, rng):
        values = rng.integers(0, 16, size=20)
        bits = pack_block(values, 4)
        assert bits.size == 80
        assert np.array_equal(unpack_block(bits, 20, 4), values)

    def test_matrix_row_major_order(self):
        values = np.array([[1, 2], [3, 0]])
        bits = pack_block(values, 2)
        assert np.array_equal(unpack_block(bits, 4, 2), [1, 2, 3, 0])

    def test_overflow_raises(self):
        with pytest.raises(ValueError):
            pack_block(np.array([4]), 2)

    def test_unpack_length_check(self):
        with pytest.raises(ValueError):
            unpack_block(np.zeros(7, dtype=np.uint8), 2, 4)

    def test_empty(self):
        assert pack_block(np.zeros(0, dtype=np.int64), 3).size == 0
