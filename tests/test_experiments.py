"""Unit tests for the experiment orchestration subsystem."""

import json

import pytest

from repro.experiments import (ExperimentSpec, GridSpec, TrialSpec,
                               TrialStore, aggregate, build_campaign,
                               campaign_names, estimate_thresholds,
                               free_grid, make_adversary, render_report,
                               run_campaign, run_single)
from repro.experiments.runner import (STATUS_ERROR, STATUS_OK,
                                      STATUS_UNSUPPORTED, execute_trial)


def tiny_spec(**overrides):
    kwargs = dict(name="tiny", protocols=("det-sqrt",),
                  adversaries=("adaptive",), ns=(16,),
                  alphas=(0.0, 1 / 16), bandwidths=(16,), replicates=2)
    kwargs.update(overrides)
    return free_grid(**kwargs)


class TestTrialSpec:
    def test_content_hash_stable_and_distinct(self):
        a = TrialSpec("det-sqrt", "adaptive", 16, 0.0625)
        b = TrialSpec("det-sqrt", "adaptive", 16, 0.0625)
        c = TrialSpec("det-sqrt", "adaptive", 16, 0.0625, replicate=1)
        assert a.content_hash() == b.content_hash()
        assert a.content_hash() != c.content_hash()

    def test_round_trips_through_dict(self):
        a = TrialSpec("det-logn", "nonadaptive", 32, 1 / 32, replicate=3,
                      base_seed=7)
        assert TrialSpec.from_dict(a.to_dict()) == a

    def test_seeds_differ_per_role_and_replicate(self):
        a = TrialSpec("det-sqrt", "adaptive", 16, 0.0625)
        b = TrialSpec("det-sqrt", "adaptive", 16, 0.0625, replicate=1)
        assert a.instance_seed != a.adversary_seed != a.protocol_seed
        assert a.instance_seed != b.instance_seed

    def test_validation(self):
        with pytest.raises(ValueError):
            TrialSpec("det-sqrt", "adaptive", 1, 0.0)
        with pytest.raises(ValueError):
            TrialSpec("det-sqrt", "adaptive", 16, 1.5)


class TestExperimentSpec:
    def test_expansion_and_dedup(self):
        grid = GridSpec(protocols=("det-sqrt",), adversaries=("adaptive",),
                        ns=(16,), alphas=(0.0, 0.0625), bandwidths=(16,))
        spec = ExperimentSpec(name="x", grids=(grid, grid), replicates=2)
        trials = spec.trials()
        assert len(trials) == 4  # duplicate grid contributes nothing
        assert len({t.content_hash() for t in trials}) == 4

    def test_json_round_trip(self):
        spec = tiny_spec()
        again = ExperimentSpec.from_json(spec.to_json())
        assert again == spec
        assert [t.content_hash() for t in again.trials()] == \
               [t.content_hash() for t in spec.trials()]

    def test_overrides(self):
        spec = tiny_spec().with_overrides(replicates=5, base_seed=9)
        assert spec.replicates == 5 and spec.base_seed == 9


class TestStore:
    def test_append_reload(self, tmp_path):
        path = str(tmp_path / "rows.jsonl")
        trial = TrialSpec("det-sqrt", "adaptive", 16, 0.0)
        with TrialStore(path) as store:
            store.append({"hash": trial.content_hash(),
                          "trial": trial.to_dict(), "status": "ok"})
        reloaded = TrialStore(path)
        assert trial in reloaded
        assert reloaded.get(trial)["status"] == "ok"

    def test_last_write_wins_and_torn_line_skipped(self, tmp_path):
        path = str(tmp_path / "rows.jsonl")
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(json.dumps({"hash": "h1", "status": "error"}) + "\n")
            fh.write(json.dumps({"hash": "h1", "status": "ok"}) + "\n")
            fh.write('{"hash": "h2", "status"')  # interrupted write
        store = TrialStore(path)
        assert len(store) == 1
        assert store.get_by_hash("h1")["status"] == "ok"

    def test_non_trialspec_keys_raise(self, tmp_path):
        """Regression: a mistyped key type must not silently read as a
        cache miss (re-running / double-recording the trial) — it raises."""
        store = TrialStore()
        store.append({"hash": "h1", "status": "ok"})
        with pytest.raises(TypeError):
            store.get("h1")
        with pytest.raises(TypeError):
            "h1" in store
        with pytest.raises(TypeError):
            store.get({"protocol": "det-sqrt"})
        assert store.get_by_hash("h1")["status"] == "ok"
        assert store.get_by_hash("missing") is None

    def test_memory_store(self):
        store = TrialStore()
        store.append({"hash": "x", "status": "ok"})
        assert len(store) == 1 and store.path is None


class TestRunner:
    def test_trial_statuses(self):
        ok, _ = run_single(TrialSpec("det-sqrt", "adaptive", 16, 1 / 16,
                                     bandwidth=16))
        assert ok["status"] == STATUS_OK and ok["accuracy"] == 1.0
        unsupported, _ = run_single(TrialSpec("det-sqrt", "adaptive", 16,
                                              0.4, bandwidth=16))
        assert unsupported["status"] == STATUS_UNSUPPORTED
        error = execute_trial(TrialSpec("no-such-protocol", "adaptive", 16,
                                        0.0, bandwidth=16).to_dict())
        assert error["status"] == STATUS_ERROR
        assert "no-such-protocol" in error["reason"]

    def test_rows_carry_observability_stamps(self):
        for row in (
            run_single(TrialSpec("det-sqrt", "adaptive", 16, 1 / 16,
                                 bandwidth=16))[0],
            run_single(TrialSpec("det-sqrt", "adaptive", 16, 0.4,
                                 bandwidth=16))[0],  # unsupported
        ):
            assert row["wall_seconds"] >= 0
            assert row["recorded_unix"] > 0

    def test_rows_embed_metrics_when_enabled(self):
        from repro.obs import metrics
        with metrics.use():
            row, _ = run_single(TrialSpec("det-sqrt", "adaptive", 16,
                                          1 / 16, bandwidth=16))
        assert row["metrics"]["counters"]["net.rounds"] == row["rounds"]
        assert row["metrics"]["counters"]["net.bits"] == row["bits_sent"]
        # and without the flag, no snapshot is embedded
        with metrics.use(on=False):
            row, _ = run_single(TrialSpec("det-sqrt", "adaptive", 16,
                                          1 / 16, bandwidth=16))
        assert "metrics" not in row

    def test_inline_campaign_and_resume(self, tmp_path):
        path = str(tmp_path / "campaign.jsonl")
        spec = tiny_spec()
        first = run_campaign(spec, store=path, jobs=1)
        assert first.executed == spec.size() and first.errors == 0
        again = run_campaign(spec, store=path, jobs=1, resume=True)
        assert again.executed == 0
        assert again.cached == spec.size()
        assert sorted(r["hash"] for r in again.rows()) == \
               sorted(r["hash"] for r in first.rows())

    def test_resume_retries_error_rows_only(self, tmp_path):
        path = str(tmp_path / "campaign.jsonl")
        spec = tiny_spec(replicates=1)
        run_campaign(spec, store=path, jobs=1)
        # fake a transient crash on one trial: resume must re-run exactly it
        store = TrialStore(path)
        victim = spec.trials()[0]
        store.append({"hash": victim.content_hash(),
                      "trial": victim.to_dict(), "status": STATUS_ERROR,
                      "reason": "RuntimeError('flaky')"})
        store.close()
        again = run_campaign(spec, store=path, jobs=1, resume=True)
        assert again.executed == 1 and again.cached == spec.size() - 1
        assert again.store.get(victim)["status"] == STATUS_OK

    def test_campaign_spec_recorded_in_store(self, tmp_path):
        path = str(tmp_path / "campaign.jsonl")
        spec = tiny_spec(replicates=1)
        run_campaign(spec, store=path, jobs=1)
        reloaded = TrialStore(path)
        metas = [r for r in reloaded.rows() if r.get("kind") == "campaign"]
        assert len(metas) == 1
        assert ExperimentSpec.from_dict(metas[0]["spec"]) == spec
        # metadata rows must not leak into aggregation
        assert len(aggregate(reloaded.rows())) == 2

    def test_rerun_without_resume_reexecutes(self, tmp_path):
        path = str(tmp_path / "campaign.jsonl")
        spec = tiny_spec(replicates=1)
        run_campaign(spec, store=path, jobs=1)
        second = run_campaign(spec, store=path, jobs=1)
        assert second.executed == spec.size() and second.cached == 0

    def test_parallel_matches_inline(self):
        spec = tiny_spec(replicates=1)
        inline = run_campaign(spec, jobs=1)
        parallel = run_campaign(spec, jobs=2)
        key = lambda r: (r["hash"], r["status"], r.get("accuracy"),
                         r.get("rounds"), r.get("bits_sent"))
        assert sorted(map(key, inline.rows())) == \
               sorted(map(key, parallel.rows()))

    def test_progress_callback(self):
        seen = []
        spec = tiny_spec(replicates=1)
        run_campaign(spec, jobs=1,
                     progress=lambda done, total, row: seen.append(done))
        assert seen == list(range(1, spec.size() + 1))

    def test_adversary_catalog(self):
        for kind in ("null", "adaptive", "nonadaptive", "sliding-window",
                     "targeted"):
            adversary = make_adversary(kind, 0.25, seed=1)
            assert adversary.alpha in (0.0, 0.25)
        with pytest.raises(ValueError):
            make_adversary("bogus", 0.25, seed=1)


class TestAggregation:
    def test_cells_and_thresholds(self):
        spec = tiny_spec(alphas=(0.0, 1 / 16, 0.4))
        result = run_campaign(spec, jobs=1)
        cells = aggregate(result.rows())
        assert len(cells) == 3
        by_alpha = {c.alpha: c for c in cells}
        assert by_alpha[0.0].ok == 2 and by_alpha[0.0].accuracy.mean == 1.0
        assert by_alpha[0.4].unsupported == 2 and not by_alpha[0.4].supported
        (estimate,) = estimate_thresholds(cells, accuracy_bar=1.0)
        assert estimate.max_alpha == 1 / 16
        assert estimate.first_failure_alpha == 0.4
        assert estimate.best_cell.alpha == 1 / 16

    def test_replicate_statistics(self):
        rows = []
        for replicate, accuracy in enumerate((0.9, 1.0)):
            trial = TrialSpec("p", "a", 16, 0.1, replicate=replicate)
            rows.append({"hash": trial.content_hash(),
                         "trial": trial.to_dict(), "status": "ok",
                         "accuracy": accuracy, "rounds": 4, "bits_sent": 100,
                         "correct_entries": 256, "total_entries": 256})
        (cell,) = aggregate(rows)
        assert cell.accuracy.mean == pytest.approx(0.95)
        assert cell.accuracy.std > 0 and cell.accuracy.ci95 > 0

    def test_render_report_smoke(self):
        spec = tiny_spec(replicates=1)
        result = run_campaign(spec, jobs=1)
        text = render_report(result.rows(), accuracy_bar=1.0)
        assert "det-sqrt" in text and "max alpha" in text
        assert render_report([]) == "(no completed trials)"


class TestRegistry:
    def test_catalog_names(self):
        names = campaign_names()
        for expected in ("table1", "figure1-ldc", "figure2-butterfly",
                         "figure3-grid", "headline-scaling", "smoke"):
            assert expected in names

    def test_catalog_specs_expand(self):
        for name in campaign_names():
            spec = build_campaign(name)
            assert spec.size() > 0
            # every spec survives a JSON round trip (the declarative contract)
            assert ExperimentSpec.from_json(spec.to_json()) == spec

    def test_unknown_campaign(self):
        with pytest.raises(ValueError):
            build_campaign("nope")

    def test_overrides_thread_through(self):
        spec = build_campaign("smoke", replicates=1, base_seed=42)
        assert spec.replicates == 1 and spec.base_seed == 42
