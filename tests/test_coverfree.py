"""Unit tests for (r, δ)-cover-free families (Section 4.1 + Appendix A)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.coverfree.family import CoverFreeFamily, groups_of
from repro.coverfree.lll import LLLConstructionError, derandomized_cover_free_family
from repro.coverfree.poisson_binomial import (
    poisson_binomial_pmf,
    poisson_binomial_tail,
)
from repro.coverfree.random_construction import (
    CoverFreeConstructionError,
    build_cover_free_family,
    chernoff_failure_bound,
    expected_covered_fraction,
    paper_set_size,
    sample_family,
)
from repro.utils.rng import make_rng


class TestFamilyStructure:
    def test_groups_of(self):
        assert groups_of(100, 10) == (10, 100)
        assert groups_of(105, 10) == (10, 100)  # leftovers ignored

    def test_groups_too_small_raises(self):
        with pytest.raises(ValueError):
            groups_of(5, 10)

    def test_elements_stay_in_groups(self):
        family = sample_family(100, 20, 10, make_rng(1))
        for i in range(20):
            elements = family.set_elements(i)
            assert np.array_equal(elements // 10, np.arange(10))

    def test_rejects_stray_elements(self):
        with pytest.raises(ValueError):
            CoverFreeFamily(ground_size=20, group_size=5,
                            sets=np.array([[0, 3]]))  # 3 not in group 1

    def test_uncovered_fraction_no_others(self):
        family = sample_family(100, 5, 10, make_rng(2))
        assert family.uncovered_fraction(0, []) == 1.0

    def test_uncovered_fraction_identical(self):
        sets = np.array([[0, 5], [0, 5]])
        family = CoverFreeFamily(ground_size=10, group_size=5, sets=sets)
        assert family.uncovered_fraction(0, [1]) == 0.0


class TestRandomConstruction:
    def test_paper_set_size(self):
        # Lemma 4.4: L = floor(delta * n / 4k) with delta = 1/50
        assert paper_set_size(10 ** 6, r=0, delta=1 / 50) == 5000

    def test_verified_construction(self):
        rng = make_rng(3)
        constraints = [(0, 1), (2, 3), (1, 2)]
        family = build_cover_free_family(
            ground_size=256, num_sets=4, set_size=8, delta=0.5,
            rng=rng, constraints=constraints)
        assert family.is_cover_free(constraints, 0.5)

    def test_unverified_when_no_constraints(self):
        family = build_cover_free_family(128, 10, 8, 0.25, make_rng(4))
        assert family.num_sets == 10

    def test_impossible_parameters_raise(self):
        rng = make_rng(5)
        # two sets over tiny groups with delta -> 0 cannot avoid overlap
        constraints = [tuple(range(8))]
        with pytest.raises(CoverFreeConstructionError):
            build_cover_free_family(
                ground_size=16, num_sets=8, set_size=8, delta=0.01,
                rng=rng, constraints=constraints, max_attempts=8)

    def test_invalid_delta(self):
        with pytest.raises(ValueError):
            build_cover_free_family(64, 2, 4, 1.5, make_rng(0))

    def test_expected_covered_fraction(self):
        assert expected_covered_fraction(0, 10, 8) == 0.0
        assert 0 < expected_covered_fraction(3, 10, 8) < 1

    def test_chernoff_bound_monotone_in_group_size(self):
        loose = chernoff_failure_bound(2, 32, 8, 0.5)
        tight = chernoff_failure_bound(2, 32, 64, 0.5)
        assert tight <= loose

    @given(st.integers(0, 2**31 - 1))
    @settings(max_examples=10, deadline=None)
    def test_randomized_family_usually_cover_free(self, seed):
        rng = make_rng(seed)
        constraints = [(0, 1, 2)]
        family = build_cover_free_family(
            ground_size=512, num_sets=3, set_size=8, delta=0.5,
            rng=rng, constraints=constraints)
        assert family.is_cover_free(constraints, 0.5)


class TestPoissonBinomial:
    def test_matches_binomial(self):
        from math import comb
        p = 0.3
        pmf = poisson_binomial_pmf([p] * 10)
        for j in range(11):
            expected = comb(10, j) * p**j * (1 - p)**(10 - j)
            assert pmf[j] == pytest.approx(expected, rel=1e-9)

    def test_tail(self):
        probs = [0.5] * 4
        assert poisson_binomial_tail(probs, 4) == 0.0
        assert poisson_binomial_tail(probs, -1) == 1.0
        assert poisson_binomial_tail(probs, 1) == pytest.approx(
            11 / 16, rel=1e-9)

    def test_rejects_bad_probabilities(self):
        with pytest.raises(ValueError):
            poisson_binomial_pmf([1.5])

    def test_empty(self):
        pmf = poisson_binomial_pmf([])
        assert pmf.size == 1 and pmf[0] == 1.0


class TestLLLDerandomisation:
    def test_small_instance(self):
        constraints = [(0, 1), (1, 2)]
        family = derandomized_cover_free_family(
            ground_size=256, num_sets=3, set_size=8, delta=0.5,
            constraints=constraints)
        assert family.is_cover_free(constraints, 0.5)

    def test_deterministic(self):
        constraints = [(0, 1)]
        a = derandomized_cover_free_family(128, 2, 4, 0.5, constraints)
        b = derandomized_cover_free_family(128, 2, 4, 0.5, constraints)
        assert np.array_equal(a.sets, b.sets)

    def test_too_tight_raises(self):
        constraints = [tuple(range(6))]
        with pytest.raises(LLLConstructionError):
            derandomized_cover_free_family(
                ground_size=12, num_sets=6, set_size=6, delta=0.05,
                constraints=constraints)

    def test_matches_paper_event_structure(self):
        """Each constraint tuple of size s contributes s bad events."""
        constraints = [(0, 1, 2), (3, 4)]
        family = derandomized_cover_free_family(
            ground_size=512, num_sets=5, set_size=8, delta=0.5,
            constraints=constraints)
        assert not family.violations(constraints, 0.5)
