"""Cross-codec parity: batched kernels must agree bit-for-bit with the
per-word reference paths.

The batch interfaces (`encode_many` / `decode_many_flagged`) are the primary
codec contract — every protocol layer consumes them — so for every shipped
code they must reproduce the per-word `encode` / `decode` semantics exactly,
including on rows corrupted beyond the decoding radius: a row's failure flag
is set exactly when `decode` raises :class:`DecodingFailure`, and a failed
row's content is all-zero.
"""

import numpy as np
import pytest

from repro.coding.hadamard import HadamardLDC
from repro.coding.interfaces import BinaryCode, DecodingFailure
from repro.coding.justesen import make_justesen_code
from repro.coding.linear import best_effort_linear_code, extended_hamming_8_4
from repro.coding.reed_muller import ReedMullerLDC
from repro.coding.reed_solomon import ReedSolomonBinaryCode, ReedSolomonCodec
from repro.coding.repetition import RepetitionCode
from repro.fields.gf2m import GF2m
from repro.utils.rng import make_rng


def _binary_codes():
    return [
        ("repetition", RepetitionCode(k=6, repetitions=5)),
        ("hamming-8-4", extended_hamming_8_4()),
        ("linear-searched", best_effort_linear_code(8, 24, seed=0)),
        ("rs-binary", ReedSolomonBinaryCode(ReedSolomonCodec(GF2m(4),
                                                             n=12, k=6))),
        ("justesen-short", make_justesen_code(96)),
        ("justesen-padded", make_justesen_code(250)),
    ]


def _noisy_batch(code: BinaryCode, rng, count: int = 24) -> np.ndarray:
    """Random codeword batch: one third clean, one third lightly corrupted
    (within the guaranteed radius), one third random noise (rows that may
    legitimately fail)."""
    msgs = rng.integers(0, 2, size=(count, code.k), dtype=np.uint8)
    words = code.encode_many(msgs)
    correctable = code.max_correctable_errors()
    for i in range(count):
        if i % 3 == 1 and correctable > 0:
            errors = int(rng.integers(1, correctable + 1))
            positions = rng.choice(code.n, errors, replace=False)
            words[i, positions] ^= 1
        elif i % 3 == 2:
            words[i] = rng.integers(0, 2, size=code.n, dtype=np.uint8)
    return words


@pytest.mark.parametrize("name,code", _binary_codes(),
                         ids=[n for n, _ in _binary_codes()])
class TestBinaryCodeParity:
    def test_encode_many_matches_encode(self, name, code, rng):
        msgs = rng.integers(0, 2, size=(17, code.k), dtype=np.uint8)
        batch = code.encode_many(msgs)
        assert batch.shape == (17, code.n)
        for i in range(17):
            assert np.array_equal(batch[i], code.encode(msgs[i])), \
                f"{name}: encode_many row {i} diverges from encode"

    def test_decode_many_flagged_matches_decode(self, name, code):
        rng = make_rng(hash(name) & 0xFFFF)
        words = _noisy_batch(code, rng)
        decoded, failed = code.decode_many_flagged(words)
        saw_failure = False
        for i, word in enumerate(words):
            try:
                expected = code.decode(word)
            except DecodingFailure:
                saw_failure = True
                assert failed[i], \
                    f"{name}: row {i} raises per-word but batch flag unset"
                assert not decoded[i].any(), \
                    f"{name}: failed row {i} must decode all-zero"
            else:
                assert not failed[i], \
                    f"{name}: row {i} decodes per-word but batch flagged it"
                assert np.array_equal(decoded[i], expected), \
                    f"{name}: decode_many_flagged row {i} diverges"
        # at least the pure-noise rows of fragile codes should exercise the
        # failing-row path somewhere across the parametrised family
        if name.startswith("justesen"):
            assert saw_failure, f"{name}: batch contained no failing rows"

    def test_empty_batch(self, name, code):
        decoded, failed = code.decode_many_flagged(
            np.zeros((0, code.n), dtype=np.uint8))
        assert decoded.shape == (0, code.k)
        assert failed.shape == (0,)
        assert code.encode_many(
            np.zeros((0, code.k), dtype=np.uint8)).shape == (0, code.n)


class TestReedSolomonSymbolParity:
    """The symbol-level RS codec (int64 symbols, not bits) has its own
    batched pipeline (batch Chien/Forney); check it against per-word
    decode on clean, correctable and hopeless rows."""

    @pytest.fixture
    def codec(self):
        return ReedSolomonCodec(GF2m(8), n=40, k=20)

    def test_correct_many_matches_decode(self, codec, rng):
        count = 30
        msgs = rng.integers(0, 256, size=(count, codec.k))
        words = codec.encode_many(msgs)
        for i in range(count):
            if i % 3 == 1:
                errors = int(rng.integers(1, codec.t + 1))
                positions = rng.choice(codec.n, errors, replace=False)
                words[i, positions] ^= rng.integers(1, 256, errors)
            elif i % 3 == 2:
                words[i] = rng.integers(0, 256, codec.n)
        decoded, failed = codec.decode_many_flagged(words)
        for i in range(count):
            try:
                expected = codec.decode(words[i])
            except DecodingFailure:
                assert failed[i]
                assert not decoded[i].any()
            else:
                assert not failed[i]
                assert np.array_equal(decoded[i], expected)

    def test_correct_many_leaves_failed_rows_unmodified(self, codec, rng):
        words = rng.integers(0, 256, size=(5, codec.n))
        corrected, failed = codec.correct_many(words)
        assert np.array_equal(corrected[failed], words[failed])


class TestLDCEncodeParity:
    """Hadamard and Reed–Muller are locally decodable (symbol) codes; their
    batched encoders must match the per-word evaluation exactly."""

    def test_hadamard(self, rng):
        ldc = HadamardLDC(k=6)
        msgs = rng.integers(0, 2, size=(13, ldc.k))
        batch = ldc.encode_many(msgs)
        for i in range(13):
            assert np.array_equal(batch[i], ldc.encode(msgs[i]))

    def test_reed_muller(self, rng):
        ldc = ReedMullerLDC(p=7, m=2, degree=2)
        msgs = rng.integers(0, ldc.p, size=(11, ldc.k))
        batch = ldc.encode_many(msgs)
        assert batch.shape == (11, ldc.n)
        for i in range(11):
            assert np.array_equal(batch[i], ldc.encode(msgs[i]))
