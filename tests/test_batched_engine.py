"""Parity and contract tests for the trial-batched clique engine."""

import numpy as np
import pytest

from repro.adversary import (AdaptiveAdversary, BatchedNonAdaptiveAdversary,
                             BatchedNullAdversary, NonAdaptiveAdversary,
                             NullAdversary, PerTrialAdversaryBatch)
from repro.adversary.budget import FaultBudgetViolation, validate_fault_sets
from repro.cliquesim import BatchedClique, CongestedClique
from repro.utils.rng import make_rng

N = 16
TRIALS = 3
WIDTH = 6


def payload_stack(seed: int, width: int = WIDTH) -> np.ndarray:
    rng = make_rng(seed)
    vals = rng.integers(0, 1 << width, size=(TRIALS, N, N), dtype=np.int64)
    vals[rng.random((TRIALS, N, N)) < 0.2] = -1
    return vals


def assert_engine_parity(batched_adv, serial_adv_factory, rounds=3):
    """Drive the same exchanges through a BatchedClique and per-trial
    CongestedCliques; everything observable must match bit for bit."""
    bc = BatchedClique(N, TRIALS, bandwidth=4, adversary=batched_adv)
    nets = [CongestedClique(N, bandwidth=4, adversary=serial_adv_factory(t))
            for t in range(TRIALS)]
    for r in range(rounds):
        vals = payload_stack(100 + r)
        got_b = bc.exchange(vals, width=WIDTH)
        for t in range(TRIALS):
            got_s = nets[t].exchange(vals[t], width=WIDTH)
            assert np.array_equal(got_b[t], got_s)
    for t in range(TRIALS):
        assert bc.rounds_used == nets[t].rounds_used
        assert int(bc.bits_sent[t]) == nets[t].bits_sent
        assert int(bc.entries_corrupted[t]) == nets[t].entries_corrupted


class TestBatchedCliqueParity:
    def test_fault_free(self):
        assert_engine_parity(None, lambda t: NullAdversary())

    def test_nonadaptive_native_masks(self):
        seeds = [500 + 7 * t for t in range(TRIALS)]
        assert_engine_parity(
            BatchedNonAdaptiveAdversary(1 / 16, seeds),
            lambda t: NonAdaptiveAdversary(1 / 16, seed=seeds[t]))

    def test_per_trial_fallback_wrapper(self):
        seeds = [900 + 11 * t for t in range(TRIALS)]
        assert_engine_parity(
            PerTrialAdversaryBatch(
                [AdaptiveAdversary(1 / 16, seed=s) for s in seeds]),
            lambda t: AdaptiveAdversary(1 / 16, seed=seeds[t]))

    def test_exchange_bits_parity(self):
        rng = make_rng(7)
        bits = rng.integers(0, 2, size=(TRIALS, N, N, 10), dtype=np.uint8)
        present = rng.random((TRIALS, N, N)) < 0.9
        bc = BatchedClique(N, TRIALS, bandwidth=4)
        got_b, dropped_b = bc.exchange_bits(bits, present)
        for t in range(TRIALS):
            net = CongestedClique(N, bandwidth=4)
            got_s, dropped_s = net.exchange_bits(bits[t], present[t])
            assert np.array_equal(got_b[t], got_s)
            assert np.array_equal(dropped_b[t], dropped_s)

    def test_per_trial_dropped_masks_are_independent(self):
        seeds = [123 + t for t in range(TRIALS)]
        bc = BatchedClique(N, TRIALS, bandwidth=4,
                           adversary=BatchedNonAdaptiveAdversary(
                               0.25, seeds, content_attack="drop"))
        vals = payload_stack(42)
        present = vals >= 0
        bits = np.unpackbits(
            vals.clip(min=0).astype(np.uint8)[..., None],
            axis=-1, count=WIDTH, bitorder="little")
        _, dropped = bc.exchange_bits(bits, present)
        assert dropped.shape == (TRIALS, N, N)
        # independent per-trial streams: the drop patterns must differ
        assert not all(np.array_equal(dropped[0], dropped[t])
                       for t in range(1, TRIALS))


class TestValidateFaultSets:
    def test_accepts_within_budget(self):
        edges = np.zeros((TRIALS, N, N), dtype=bool)
        edges[:, 0, 1] = edges[:, 1, 0] = True
        validate_fault_sets(edges, N, 1 / 16)

    def test_rejects_over_budget_naming_trial(self):
        edges = np.zeros((TRIALS, N, N), dtype=bool)
        edges[1, 0, 1:4] = edges[1, 1:4, 0] = True  # degree 3 at node 0
        with pytest.raises(FaultBudgetViolation, match="trial 1"):
            validate_fault_sets(edges, N, 1 / 16)

    def test_rejects_asymmetric_and_diagonal(self):
        edges = np.zeros((TRIALS, N, N), dtype=bool)
        edges[0, 2, 3] = True
        with pytest.raises(FaultBudgetViolation, match="symmetric"):
            validate_fault_sets(edges, N, 0.5)
        edges = np.zeros((TRIALS, N, N), dtype=bool)
        edges[2, 5, 5] = True
        with pytest.raises(FaultBudgetViolation, match="self-loops"):
            validate_fault_sets(edges, N, 0.5)


class TestKeepHistory:
    def test_history_off_by_default(self):
        bc = BatchedClique(N, TRIALS, bandwidth=4)
        bc.exchange(payload_stack(1), width=WIDTH)
        assert not bc.keep_history
        assert all(len(h) == 0 for h in bc.histories)
        assert bc.rounds_used > 0  # counters still advance

    def test_history_opt_in(self):
        bc = BatchedClique(N, TRIALS, bandwidth=4, keep_history=True)
        bc.exchange(payload_stack(1), width=WIDTH)
        assert all(len(h) == bc.rounds_used for h in bc.histories)

    def test_history_forced_by_history_reading_adversary(self):
        adv = BatchedNullAdversary()
        adv.reads_history = True
        bc = BatchedClique(N, TRIALS, bandwidth=4, adversary=adv)
        assert bc.keep_history

    def test_serial_keep_history_flag(self):
        lean = CongestedClique(N, bandwidth=4, keep_history=False)
        full = CongestedClique(N, bandwidth=4)
        vals = payload_stack(3)[0]
        assert np.array_equal(lean.exchange(vals, width=WIDTH),
                              full.exchange(vals, width=WIDTH))
        assert len(lean.history) == 0
        assert len(full.history) == full.rounds_used
        assert lean.bits_sent == full.bits_sent
