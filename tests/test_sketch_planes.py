"""Plane-native sketch core: `SketchPlanes.add_many` must be the scalar
`KSparseSketch.add` loop, vectorised — identical planes, identical recovery —
and `SketchSpec` must reject degenerate layouts loudly.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.sketch.ksparse import (KSparseSketch, SketchPlanes,
                                  SketchPlaneStack, SketchRecoveryError,
                                  SketchSpec, planes_supported)

#: a plane-eligible spec (the default 2^61-1 fingerprint prime is scalar-only)
SPEC = SketchSpec(capacity=6, max_id=10_000, max_abs_count=64,
                  fingerprint_prime=(1 << 19) - 1)


def scalar_reference(spec, seed, updates):
    sketch = KSparseSketch(spec, seed)
    for element, frequency in updates:
        sketch.add(element, frequency)
    return sketch


class TestAddManyParity:
    @given(st.lists(st.tuples(st.integers(0, SPEC.max_id),
                              st.integers(-3, 3).filter(lambda f: f != 0)),
                    min_size=0, max_size=40),
           st.integers(0, 2**31 - 1))
    @settings(max_examples=50, deadline=None)
    def test_add_many_matches_elementwise_add(self, updates, seed):
        ref = scalar_reference(SPEC, seed, updates)
        planes = SketchPlanes(SPEC, seed)
        if updates:
            ids, freqs = zip(*updates)
            planes.add_many(np.array(ids, dtype=np.int64),
                            np.array(freqs, dtype=np.int64))
        mirror = SketchPlanes.from_sketch(ref)
        np.testing.assert_array_equal(planes.count, mirror.count)
        np.testing.assert_array_equal(planes.id_sum, mirror.id_sum)
        np.testing.assert_array_equal(planes.fingerprint, mirror.fingerprint)
        # and the scalar grid rebuilt from the planes is the reference grid
        np.testing.assert_array_equal(planes.to_sketch().to_bits(),
                                      ref.to_bits())

    @given(st.dictionaries(st.integers(0, SPEC.max_id),
                           st.integers(-3, 3).filter(lambda f: f != 0),
                           min_size=0, max_size=6),
           st.integers(0, 2**31 - 1))
    @settings(max_examples=50, deadline=None)
    def test_add_many_recover_matches_scalar_recover(self, truth, seed):
        """For k-sparse workloads both paths recover the same multiset —
        or stall identically (recovery is a deterministic function of the
        grid, and the grids are equal)."""
        updates = list(truth.items())
        ref = scalar_reference(SPEC, seed, updates)
        planes = SketchPlanes(SPEC, seed)
        if updates:
            ids, freqs = zip(*updates)
            planes.add_many(np.array(ids, dtype=np.int64),
                            np.array(freqs, dtype=np.int64))
        try:
            expected = ref.recover()
        except SketchRecoveryError:
            with pytest.raises(SketchRecoveryError):
                planes.recover()
            return
        assert planes.recover() == expected

    def test_cancellation_heavy_workload(self):
        # many updates, small net support: the Step IV subtraction shape
        rng = np.random.default_rng(5)
        support = rng.choice(SPEC.max_id + 1, size=4, replace=False)
        ids = support[rng.integers(0, 4, size=500)]
        freqs = rng.choice([-1, 1], size=500).astype(np.int64)
        planes = SketchPlanes(SPEC, 77)
        planes.add_many(ids, freqs)
        ref = scalar_reference(SPEC, 77, zip(ids.tolist(), freqs.tolist()))
        assert planes.recover() == ref.recover()

    def test_stack_lockstep_matches_per_trial_planes(self):
        seeds = [3, 3, 9]
        stack = SketchPlaneStack(SPEC, seeds)
        rng = np.random.default_rng(11)
        ids = rng.integers(0, SPEC.max_id + 1, size=(3, 20))
        stack.add_many_lockstep(ids, 1)
        for t, seed in enumerate(seeds):
            solo = SketchPlanes(SPEC, seed)
            solo.add_many(ids[t], np.ones(20, dtype=np.int64))
            np.testing.assert_array_equal(stack.count[t], solo.count)
            np.testing.assert_array_equal(stack.id_sum[t], solo.id_sum)
            np.testing.assert_array_equal(stack.fingerprint[t],
                                          solo.fingerprint)

    def test_planes_reject_unsupported_spec(self):
        wide = SketchSpec(capacity=4, max_id=100, max_abs_count=8)
        assert not planes_supported(wide)  # 2^61-1 fingerprints: scalar only
        with pytest.raises(ValueError, match="plane fast path"):
            SketchPlanes(wide, 0)


class TestSketchSpecValidation:
    @pytest.mark.parametrize("field,value", [
        ("capacity", 0), ("capacity", -2),
        ("rows", 0), ("rows", -1),
        ("max_id", -1),
        ("max_abs_count", 0),
        ("fingerprint_prime", 1),
    ])
    def test_degenerate_layouts_rejected_naming_field(self, field, value):
        kwargs = dict(capacity=4, max_id=100, max_abs_count=8)
        kwargs[field] = value
        with pytest.raises(ValueError, match=field):
            SketchSpec(**kwargs)

    def test_valid_spec_accepted(self):
        spec = SketchSpec(capacity=1, max_id=0, max_abs_count=1, rows=1)
        assert spec.buckets == 2
