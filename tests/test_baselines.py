"""Integration tests for the baselines and the E9 collapse experiment."""

import numpy as np
import pytest

from repro.adversary import AdaptiveAdversary, NullAdversary, StaticStrategy
from repro.adversary.nonadaptive import NonAdaptiveAdversary
from repro.adversary.nemesis import FP23MatchingNemesis
from repro.baseline import FischerParterStyleAllToAll, NaiveAllToAll
from repro.core import AllToAllInstance, run_protocol
from repro.core.det_logn import DetLogAllToAll


class TestNaive:
    def test_fault_free(self):
        instance = AllToAllInstance.random(32, width=2, seed=0)
        report = run_protocol(NaiveAllToAll(), instance, NullAdversary())
        assert report.perfect
        assert report.rounds == 1

    def test_degrades_linearly_with_alpha(self):
        instance = AllToAllInstance.random(64, width=2, seed=1)
        accuracies = []
        for alpha in (1 / 64, 1 / 16, 1 / 8):
            report = run_protocol(NaiveAllToAll(), instance,
                                  AdaptiveAdversary(alpha, seed=2))
            accuracies.append(report.accuracy)
        assert accuracies[0] > accuracies[1] > accuracies[2]
        assert accuracies[2] < 0.9


class TestFP23Baseline:
    def test_fault_free(self):
        instance = AllToAllInstance.random(32, width=3, seed=3)
        report = run_protocol(FischerParterStyleAllToAll(), instance,
                              NullAdversary())
        assert report.perfect

    def test_survives_static_adversary(self):
        """The classical regime [32] was designed for: a *static* bounded
        total budget leaves a majority of relay paths clean."""
        instance = AllToAllInstance.random(64, width=3, seed=4)
        adversary = NonAdaptiveAdversary(1 / 64, StaticStrategy(), seed=5)
        report = run_protocol(FischerParterStyleAllToAll(), instance,
                              adversary)
        assert report.accuracy >= 0.999

    def test_collapses_under_matching_nemesis(self):
        """E9: a deg(F) = 1 mobile adversary (alpha = 1/n, the weakest
        possible) defeats the baseline outright."""
        n = 64
        instance = AllToAllInstance.random(n, width=4, seed=6)
        nemesis = FP23MatchingNemesis()
        report = run_protocol(FischerParterStyleAllToAll(), instance,
                              nemesis, seed=7)
        assert not report.perfect
        wrong = report.total_entries - report.correct_entries
        assert wrong >= len(nemesis.victim_pairs()) // 3

    def test_det_logn_survives_much_more(self):
        """The headline contrast: same instance, 3x the faulty degree (and
        Θ(alpha n^2) total corrupted edges per round), yet perfect
        delivery."""
        n = 64
        instance = AllToAllInstance.random(n, width=4, seed=6)
        report = run_protocol(DetLogAllToAll(), instance,
                              AdaptiveAdversary(3 / 64, seed=8),
                              bandwidth=32)
        assert report.perfect

    def test_invalid_relays(self):
        with pytest.raises(ValueError):
            FischerParterStyleAllToAll(num_relays=0)
