"""Unit + property tests for GF(p) arithmetic."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.fields.gfp import PrimeField, is_prime, next_prime


class TestPrimality:
    @pytest.mark.parametrize("n", [2, 3, 5, 7, 13, 31, 127, 524287,
                                   2147483647])
    def test_primes(self, n):
        assert is_prime(n)

    @pytest.mark.parametrize("n", [0, 1, 4, 9, 15, 91, 524288, 2147483646])
    def test_composites(self, n):
        assert not is_prime(n)

    def test_next_prime(self):
        assert next_prime(14) == 17
        assert next_prime(17) == 17
        assert next_prime(1) == 2


@pytest.fixture(params=[13, 31, 524287])
def field(request):
    return PrimeField(request.param)


class TestArithmetic:
    def test_rejects_composite(self):
        with pytest.raises(ValueError):
            PrimeField(15)

    def test_rejects_huge_prime(self):
        with pytest.raises(ValueError):
            PrimeField((1 << 61) - 1)

    def test_add_sub_inverse(self, field):
        a = np.arange(10) % field.p
        b = (np.arange(10) * 7 + 3) % field.p
        assert np.array_equal(field.sub(field.add(a, b), b), a % field.p)

    def test_mul_inv(self, field):
        values = np.arange(1, min(field.p, 50))
        products = field.mul(values, field.inv(values))
        assert np.all(products == 1)

    def test_inv_zero_raises(self, field):
        with pytest.raises(ZeroDivisionError):
            field.inv(0)

    def test_pow_agrees_with_mul(self, field):
        a = 5 % field.p
        expected = 1
        for exponent in range(8):
            assert int(field.pow(a, exponent)) == expected
            expected = expected * a % field.p

    @given(st.integers(1, 10**6), st.integers(1, 10**6))
    @settings(max_examples=50)
    def test_field_axioms(self, x, y):
        field = PrimeField(524287)
        a, b = x % field.p, y % field.p
        assert int(field.mul(a, b)) == a * b % field.p
        assert int(field.add(a, b)) == (a + b) % field.p
        if a != 0:
            assert int(field.mul(a, field.inv(a))) == 1


class TestPolynomials:
    def test_poly_eval_horner(self, field):
        coeffs = [1, 2, 3]  # 1 + 2x + 3x^2
        xs = np.array([0, 1, 2])
        expected = (1 + 2 * xs + 3 * xs * xs) % field.p
        assert np.array_equal(field.poly_eval(coeffs, xs), expected)

    def test_interpolate_round_trip(self, field):
        rng = np.random.default_rng(5)
        coeffs = rng.integers(0, field.p, size=4)
        xs = np.arange(4)
        ys = field.poly_eval(coeffs, xs)
        recovered = field.interpolate(xs, ys)
        assert np.array_equal(recovered % field.p, coeffs % field.p)

    def test_interpolate_rejects_duplicates(self, field):
        with pytest.raises(ValueError):
            field.interpolate([1, 1], [0, 1])


class TestLinearAlgebra:
    def test_solve_identity(self, field):
        b = np.arange(5) % field.p
        x = field.solve(np.eye(5, dtype=np.int64), b)
        assert np.array_equal(x, b)

    def test_solve_random_consistent(self, field):
        rng = np.random.default_rng(9)
        A = rng.integers(0, field.p, size=(6, 6))
        x_true = rng.integers(0, field.p, size=6)
        b = field.matmul(A, x_true.reshape(-1, 1)).reshape(-1)
        x = field.solve(A, b)
        b_check = field.matmul(A, x.reshape(-1, 1)).reshape(-1)
        assert np.array_equal(b_check, b)

    def test_solve_inconsistent_raises(self, field):
        A = np.array([[1, 0], [1, 0], [0, 0]])
        b = np.array([1, 2, 1])
        with pytest.raises(ValueError):
            field.solve(A, b)

    def test_inv_matrix(self, field):
        rng = np.random.default_rng(11)
        for _ in range(5):
            A = rng.integers(0, field.p, size=(5, 5))
            try:
                inv = field.inv_matrix(A)
            except ValueError:
                continue  # singular draw
            assert np.array_equal(field.matmul(A, inv),
                                  np.eye(5, dtype=np.int64))

    def test_inv_matrix_singular_raises(self, field):
        with pytest.raises(ValueError):
            field.inv_matrix(np.zeros((3, 3), dtype=np.int64))

    def test_matmul_blocking_matches_direct(self):
        # force the block path with a large prime
        field = PrimeField((1 << 30) + 3 if is_prime((1 << 30) + 3)
                           else next_prime(1 << 30))
        rng = np.random.default_rng(3)
        A = rng.integers(0, field.p, size=(4, 600))
        B = rng.integers(0, field.p, size=(600, 3))
        expected = np.zeros((4, 3), dtype=object)
        for i in range(4):
            for j in range(3):
                expected[i, j] = int(sum(int(a) * int(b) for a, b in
                                         zip(A[i], B[:, j])) % field.p)
        out = field.matmul(A, B)
        assert np.array_equal(out.astype(object), expected)
